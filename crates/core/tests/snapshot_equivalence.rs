//! Cross-mode state-hash and checkpoint/restore equivalence.
//!
//! The state hash is only useful if it is *identical by construction*
//! across every engine mode and thread count — these tests pin that, and
//! pin the stronger property the CI drift matrix builds on: a run split by
//! a snapshot/restore at any tick boundary (restored under any mode) is
//! bit-identical to the uninterrupted run, in both its final report and
//! its hash stream.

use proptest::prelude::*;
use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::scenario::{MapSpec, NodeGroup, Scenario, TrafficSpec};
use vdtn::{EngineMode, MobilitySpec, SimReport, World};
use vdtn_bundle::PolicyCombo;
use vdtn_geo::GridMapGen;
use vdtn_mobility::SpmbConfig;
use vdtn_net::{DetectorBackend, RadioInterface};
use vdtn_routing::{MaxPropConfig, ProphetConfig, RouterKind, RoutingBackend};
use vdtn_sim_core::{SimDuration, SimTime};

/// Small but busy scenario: 8 vehicles on a 3×3 grid, fast contacts.
fn small(router: RouterKind, policy: PolicyCombo, seed: u64) -> Scenario {
    Scenario {
        name: "snapshot-test".into(),
        seed,
        duration_secs: 1_800.0,
        tick_secs: 1.0,
        map: MapSpec::Grid(GridMapGen {
            cols: 3,
            rows: 3,
            spacing: 120.0,
        }),
        groups: vec![NodeGroup {
            name: "vehicles".into(),
            count: 8,
            buffer_bytes: 20_000_000,
            mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig {
                wait_lo: 5.0,
                wait_hi: 20.0,
                ..SpmbConfig::default()
            }),
            is_relay: false,
        }],
        radio: RadioInterface::paper_80211b(),
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec::paper(SimDuration::from_mins(30)),
        router,
        policy,
        sample_period_secs: 60.0,
    }
}

/// Canonical serialisation with the wall clock zeroed: equal strings ⟺
/// bit-identical reports.
fn canon(mut r: SimReport) -> String {
    r.wall_secs = 0.0;
    serde_json::to_string(&r).expect("report serialises")
}

/// Drive `world` to the scenario end in `period`-second strides, sampling
/// the state hash at every stride boundary — the in-process equivalent of
/// `run_scenario --hash-stream`.
fn hash_stream(mut world: World, duration_secs: f64, period_secs: f64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut t = period_secs;
    while t < duration_secs {
        world.run_until(SimTime::from_secs_f64(t));
        out.push((world.now().as_millis(), world.state_hash()));
        t += period_secs;
    }
    world.run_until(SimTime::from_secs_f64(duration_secs));
    out.push((world.now().as_millis(), world.state_hash()));
    out
}

#[test]
fn hash_streams_identical_across_modes_and_threads() {
    for seed in [1, 23] {
        let scenario = small(RouterKind::Epidemic, PolicyCombo::LIFETIME, seed);
        let reference = hash_stream(
            World::build_with_mode(&scenario, EngineMode::Ticked),
            scenario.duration_secs,
            60.0,
        );
        let event = hash_stream(
            World::build_with_mode(&scenario, EngineMode::EventDriven),
            scenario.duration_secs,
            60.0,
        );
        assert_eq!(reference, event, "seed {seed}: event-driven drifted");
        for threads in [1, 2, 4] {
            let par = hash_stream(
                World::build_parallel_with_threads(&scenario, RoutingBackend::default(), threads),
                scenario.duration_secs,
                60.0,
            );
            assert_eq!(reference, par, "seed {seed}, threads {threads}: drifted");
        }
    }
}

#[test]
fn hash_distinguishes_different_runs() {
    let a = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 1));
    let b = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 2));
    assert_ne!(
        hash_stream(a, 1_800.0, 600.0),
        hash_stream(b, 1_800.0, 600.0),
        "different seeds must not collide across a whole stream"
    );
}

#[test]
fn restore_resumes_bit_identically_in_every_mode() {
    let scenario = small(RouterKind::paper_snw(), PolicyCombo::LIFETIME, 7);
    let reference = canon(World::build(&scenario).run());

    let mut donor = World::build(&scenario);
    donor.run_until(SimTime::from_secs_f64(600.0));
    let snap = donor.snapshot(&scenario);
    // The donor itself must also finish identically after the side capture.
    assert_eq!(
        reference,
        canon(donor.run()),
        "snapshot perturbed the donor"
    );

    for (label, resumed) in [
        (
            "ticked",
            World::restore(&snap, EngineMode::Ticked, RoutingBackend::default(), None),
        ),
        (
            "event",
            World::restore(
                &snap,
                EngineMode::EventDriven,
                RoutingBackend::default(),
                None,
            ),
        ),
        (
            "parallel-3",
            World::restore(
                &snap,
                EngineMode::Parallel,
                RoutingBackend::default(),
                Some(3),
            ),
        ),
    ] {
        assert_eq!(
            reference,
            canon(resumed.run()),
            "{label}: resumed run diverged from the uninterrupted one"
        );
    }
}

#[test]
fn restore_works_on_the_paper_scenario_with_relays() {
    // Relays exercise the stationary-mover and relay-flag paths; MaxProp
    // exercises the heaviest stateful-router snapshot.
    let mut scenario = paper_scenario(PaperProtocol::MaxProp, 30, 5);
    scenario.duration_secs = 900.0;
    let reference = canon(World::build(&scenario).run());
    let mut donor = World::build(&scenario);
    donor.run_until(SimTime::from_secs_f64(450.0));
    let snap = donor.snapshot(&scenario);
    let resumed = World::restore(
        &snap,
        EngineMode::EventDriven,
        RoutingBackend::default(),
        None,
    );
    assert_eq!(reference, canon(resumed.run()));
}

#[test]
fn run_until_segments_compose_exactly() {
    let scenario = small(RouterKind::Epidemic, PolicyCombo::FIFO_FIFO, 13);
    let whole = canon(World::build(&scenario).run());
    let mut split = World::build(&scenario);
    for stop in [37.0, 218.5, 900.0, 1_799.0] {
        split.run_until(SimTime::from_secs_f64(stop));
    }
    assert_eq!(whole, canon(split.run()), "run_until segments drifted");
}

fn router_pick(ix: u8) -> RouterKind {
    match ix % 6 {
        0 => RouterKind::Epidemic,
        1 => RouterKind::paper_snw(),
        2 => RouterKind::Prophet(ProphetConfig::default()),
        3 => RouterKind::MaxProp(MaxPropConfig::default()),
        4 => RouterKind::DirectDelivery,
        _ => RouterKind::FirstContact,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Save at a random tick of a random scenario, restore, run to
    /// completion: the final report and the post-restore hash stream must
    /// both be bytewise identical to the uninterrupted run's.
    #[test]
    fn random_save_point_round_trips(
        seed in 0u64..1_000,
        router_ix in 0u8..6,
        save_stride in 1u64..10,
    ) {
        let scenario = small(router_pick(router_ix), PolicyCombo::LIFETIME, seed);
        let save_at = SimTime::from_secs_f64(save_stride as f64 * 180.0);
        let period = 180.0;

        // Uninterrupted reference: hash stream + final report.
        let mut base = World::build(&scenario);
        let mut base_stream = Vec::new();
        let mut t = save_at.as_millis() as f64 / 1_000.0;
        while t < scenario.duration_secs {
            base.run_until(SimTime::from_secs_f64(t));
            base_stream.push((base.now().as_millis(), base.state_hash()));
            t += period;
        }
        let base_report = canon(base.run());

        // Interrupted run: stop at the save point, snapshot, restore under
        // a different mode, then emit the same stream boundaries.
        let mut donor = World::build(&scenario);
        donor.run_until(save_at);
        let snap = donor.snapshot(&scenario);
        drop(donor);
        let restore_mode = if seed % 2 == 0 { EngineMode::Ticked } else { EngineMode::EventDriven };
        let mut resumed = World::restore(&snap, restore_mode, RoutingBackend::default(), None);
        let mut resumed_stream = Vec::new();
        let mut t = save_at.as_millis() as f64 / 1_000.0;
        while t < scenario.duration_secs {
            resumed.run_until(SimTime::from_secs_f64(t));
            resumed_stream.push((resumed.now().as_millis(), resumed.state_hash()));
            t += period;
        }
        prop_assert_eq!(base_stream, resumed_stream, "hash streams diverged after restore");
        prop_assert_eq!(base_report, canon(resumed.run()), "final reports diverged after restore");
    }
}

//! Simulation reports: the metrics the paper plots, plus diagnostics.

use serde::{Deserialize, Serialize};
use vdtn_sim_core::stats::{Ratio, Welford};
use vdtn_sim_core::{SimDuration, SimTime};

/// Why a stored message left a buffer without being forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropCause {
    /// Evicted by the drop policy on buffer overflow.
    Congestion,
    /// TTL elapsed.
    Expired,
    /// Purged by a MaxProp delivery acknowledgement.
    AckPurge,
    /// Discarded at creation time (could not fit at the source).
    CreationOverflow,
}

/// Raw message-level counters, updated by the engine as events happen.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MessageStats {
    /// Messages created at sources.
    pub created: u64,
    /// Unique messages that reached their destination.
    pub delivered_unique: u64,
    /// Redundant deliveries (extra copies reaching the destination).
    pub delivered_duplicate: u64,
    /// Completed relay transfers (copy stored at a non-destination).
    pub relayed: u64,
    /// Transfers started.
    pub transfers_started: u64,
    /// Transfers aborted by contact loss.
    pub transfers_aborted: u64,
    /// Completed transfers the receiver refused (duplicate, no space, …).
    pub transfers_rejected: u64,
    /// Buffer-policy evictions.
    pub dropped_congestion: u64,
    /// TTL expiries.
    pub dropped_expired: u64,
    /// MaxProp ack purges.
    pub dropped_ack: u64,
    /// Creation-time overflows.
    pub dropped_at_creation: u64,
    /// End-to-end delay of unique deliveries, seconds.
    pub delay: Welford,
    /// Hop counts of unique deliveries.
    pub hops: Welford,
    /// Payload bytes moved by completed transfers.
    pub bytes_transferred: u64,
    /// Payload bytes that were on the wire when their transfer aborted
    /// (contact break or end of run) — spent bandwidth that delivered no
    /// copy, settled analytically from elapsed drain time.
    pub bytes_aborted: u64,
}

impl MessageStats {
    /// Delivery probability: unique deliveries over created messages
    /// (the paper's Figures 5/7/8 metric).
    pub fn delivery_probability(&self) -> f64 {
        let r = Ratio {
            total: self.created,
            hits: self.delivered_unique,
        };
        r.value()
    }

    /// Average end-to-end delay in **minutes** (Figures 4/6/9 metric).
    pub fn avg_delay_mins(&self) -> f64 {
        self.delay.mean() / 60.0
    }

    /// Overhead ratio: relays per delivery, `(relayed − delivered)/delivered`
    /// (∞-free: 0 when nothing was delivered).
    pub fn overhead_ratio(&self) -> f64 {
        if self.delivered_unique == 0 {
            0.0
        } else {
            (self.relayed.saturating_sub(self.delivered_unique)) as f64
                / self.delivered_unique as f64
        }
    }

    /// All buffer exits that were not deliveries.
    pub fn total_drops(&self) -> u64 {
        self.dropped_congestion + self.dropped_expired + self.dropped_ack + self.dropped_at_creation
    }
}

/// One sample of a time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulation time of the sample, seconds.
    pub t_secs: f64,
    /// Sampled value.
    pub value: f64,
}

/// Complete report of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Scenario label.
    pub scenario: String,
    /// Router label.
    pub router: String,
    /// Policy label (empty for self-scheduling protocols).
    pub policy: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Message TTL used, minutes.
    pub ttl_mins: f64,
    /// Message-level statistics.
    pub messages: MessageStats,
    /// Contacts observed (link-up events).
    pub contacts: u64,
    /// Mean contact duration, seconds.
    pub mean_contact_secs: f64,
    /// Mean per-pair inter-contact time, seconds.
    pub mean_intercontact_secs: f64,
    /// Mean buffer occupancy samples over time (if sampling enabled).
    pub buffer_occupancy: Vec<Sample>,
    /// Cumulative unique deliveries over time (if sampling enabled).
    pub deliveries_over_time: Vec<Sample>,
    /// Wall-clock runtime of the engine loop, seconds.
    pub wall_secs: f64,
}

impl SimReport {
    /// Delivery probability (paper metric).
    pub fn delivery_probability(&self) -> f64 {
        self.messages.delivery_probability()
    }

    /// Average delay in minutes (paper metric).
    pub fn avg_delay_mins(&self) -> f64 {
        self.messages.avg_delay_mins()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}{}] ttl={}m: created={} delivered={} (P={:.3}) delay={:.1}m relayed={} dropped={} aborted={} (lost {} B)",
            self.scenario,
            self.router,
            if self.policy.is_empty() {
                String::new()
            } else {
                format!(", {}", self.policy)
            },
            self.ttl_mins,
            self.messages.created,
            self.messages.delivered_unique,
            self.delivery_probability(),
            self.avg_delay_mins(),
            self.messages.relayed,
            self.messages.total_drops(),
            self.messages.transfers_aborted,
            self.messages.bytes_aborted,
        )
    }

    /// Record a unique delivery (engine hook).
    pub(crate) fn on_delivered(&mut self, created: SimTime, now: SimTime, hops: u32) {
        self.messages.delivered_unique += 1;
        self.messages.delay.push(now.since(created).as_secs_f64());
        self.messages.hops.push(hops as f64);
    }

    /// Record a drop of `cause` (engine hook).
    pub(crate) fn on_dropped(&mut self, cause: DropCause, count: u64) {
        match cause {
            DropCause::Congestion => self.messages.dropped_congestion += count,
            DropCause::Expired => self.messages.dropped_expired += count,
            DropCause::AckPurge => self.messages.dropped_ack += count,
            DropCause::CreationOverflow => self.messages.dropped_at_creation += count,
        }
    }
}

/// CSV header matching [`SimReport::csv_row`].
pub fn csv_header() -> &'static str {
    "scenario,router,policy,seed,ttl_mins,created,delivered,delivery_prob,avg_delay_mins,\
     relayed,started,aborted,rejected,dropped_congestion,dropped_expired,dropped_ack,\
     contacts,mean_contact_secs,overhead"
}

impl SimReport {
    /// Flat CSV row for spreadsheet-style analysis.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.4},{:.2},{},{},{},{},{},{},{},{},{:.2},{:.2}",
            self.scenario,
            self.router,
            self.policy.replace(',', ";"),
            self.seed,
            self.ttl_mins,
            self.messages.created,
            self.messages.delivered_unique,
            self.delivery_probability(),
            self.avg_delay_mins(),
            self.messages.relayed,
            self.messages.transfers_started,
            self.messages.transfers_aborted,
            self.messages.transfers_rejected,
            self.messages.dropped_congestion,
            self.messages.dropped_expired,
            self.messages.dropped_ack,
            self.contacts,
            self.mean_contact_secs,
            self.messages.overhead_ratio(),
        )
    }
}

/// Convenience conversion for TTL bookkeeping.
pub fn ttl_minutes(ttl: SimDuration) -> f64 {
    ttl.as_mins_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_probability_and_delay() {
        let mut r = SimReport::default();
        r.messages.created = 10;
        r.on_delivered(SimTime::ZERO, SimTime::from_secs_f64(600.0), 3);
        r.on_delivered(SimTime::ZERO, SimTime::from_secs_f64(1200.0), 5);
        assert!((r.delivery_probability() - 0.2).abs() < 1e-12);
        assert!((r.avg_delay_mins() - 15.0).abs() < 1e-9);
        assert!((r.messages.hops.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_ratio() {
        let mut m = MessageStats::default();
        assert_eq!(m.overhead_ratio(), 0.0);
        m.delivered_unique = 10;
        m.relayed = 110;
        assert!((m.overhead_ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn drop_accounting() {
        let mut r = SimReport::default();
        r.on_dropped(DropCause::Congestion, 3);
        r.on_dropped(DropCause::Expired, 2);
        r.on_dropped(DropCause::AckPurge, 1);
        r.on_dropped(DropCause::CreationOverflow, 1);
        assert_eq!(r.messages.total_drops(), 7);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = SimReport::default();
        let header_cols = csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn summary_contains_key_numbers() {
        let mut r = SimReport {
            scenario: "fig4".into(),
            router: "Epidemic".into(),
            policy: "FIFO-FIFO".into(),
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        r.messages.created = 5;
        let s = r.summary();
        assert!(s.contains("fig4"));
        assert!(s.contains("Epidemic"));
        assert!(s.contains("created=5"));
    }

    #[test]
    fn serde_round_trip() {
        let r = SimReport::default();
        let json = serde_json::to_string(&r).unwrap();
        let _back: SimReport = serde_json::from_str(&json).unwrap();
    }
}

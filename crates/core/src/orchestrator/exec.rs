//! Work-stealing sweep execution with canonical reduction.
//!
//! The run population of a real sweep is wildly uneven — a 180-minute-TTL
//! 200-vehicle run costs orders of magnitude more than a 60-minute
//! 12-vehicle one — so a static `par_iter` split serialises on whichever
//! worker drew the expensive tail. Here runs are sorted by descending cost
//! estimate, grouped into chunks, and claimed by workers through one atomic
//! cursor: a worker that finishes early steals the next unclaimed chunk
//! instead of idling (the irregular-wavefront dispatch pattern).
//!
//! **Determinism rule:** execution order is a scheduling detail; *reduction
//! order is canonical*. Every finished run parks its [`RunRecord`] in a
//! slot indexed by plan position, and after the pool drains the records are
//! folded into [`CellAccumulator`]s strictly in plan order. Aggregates are
//! therefore bit-identical at any thread count, any chunk size, and across
//! kill/resume — the same discipline the parallel engine established for
//! intra-run work.

use super::accum::{CellAccumulator, RunRecord};
use super::journal::{replay_journal, JournalWriter};
use super::manifest::{CellKey, SweepManifest};
use crate::engine::{EngineMode, World};
use crate::report::SimReport;
use crate::scenario::Scenario;
use crate::snapshot::{load_snapshot, save_snapshot, scenario_fingerprint};
use crate::sweep::{SweepError, SweepPoint};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use vdtn_routing::RoutingBackend;
use vdtn_sim_core::statehash::fnv1a_64;
use vdtn_sim_core::SimTime;

/// Scenario post-processor hook: the bench harness uses this for figure
/// ablations (tick length, map scale) that are not manifest axes. Applied
/// after the run's scenario is materialised, before the world is built;
/// must be deterministic for resume to stay exact.
pub type ScenarioTweak<'a> = dyn Fn(&mut Scenario) + Sync + 'a;

/// Execution knobs for [`run_manifest`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads (0: [`rayon::current_num_threads`]).
    pub threads: usize,
    /// Runs per work-stealing chunk (0: auto-size from the pending count).
    pub chunk_size: usize,
    /// Journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Replay an existing journal at `journal` before executing the
    /// remainder. A missing journal file degrades to a cold start.
    pub resume: bool,
    /// Directory for *per-run* mid-flight checkpoints; `None` disables
    /// them. The journal resumes at run granularity — a killed sweep
    /// re-executes its in-flight runs from scratch. With a checkpoint dir,
    /// each worker also snapshots its current world every
    /// [`SweepOptions::checkpoint_every_secs`] of simulated time, and
    /// `resume` picks long runs back up *mid-run*, bit-identically (the
    /// engine's restore guarantee). Checkpoints are deleted as their run
    /// completes; a stale file against a changed scenario is ignored.
    pub checkpoint_dir: Option<PathBuf>,
    /// Simulated seconds between per-run checkpoints (0: a single
    /// checkpoint at the run's midpoint).
    pub checkpoint_every_secs: f64,
}

/// Checkpoint file for one run: named by the FNV of the run ID, so any
/// id alphabet maps to a safe filename.
fn checkpoint_path(dir: &Path, run_id: &str) -> PathBuf {
    dir.join(format!("{:016x}.ckpt", fnv1a_64(run_id.as_bytes())))
}

/// Execute one run to completion, checkpointing every `every_secs` of
/// simulated time, resuming from an existing checkpoint when `resume` is
/// set. Splitting the run at checkpoint boundaries is exact
/// (`World::run_until` composes bit-identically), so the report is the
/// same whether the run executed straight through, checkpointed along the
/// way, or resumed after a kill.
fn run_one_with_checkpoints(
    scenario: &Scenario,
    engine: EngineMode,
    backend: RoutingBackend,
    ckpt: &Path,
    every_secs: f64,
    resume: bool,
) -> std::io::Result<SimReport> {
    let every = if every_secs > 0.0 {
        every_secs
    } else {
        scenario.duration_secs / 2.0
    };
    let restored = if resume && ckpt.exists() {
        match load_snapshot(ckpt) {
            Ok(snap) if scenario_fingerprint(&snap.scenario) == scenario_fingerprint(scenario) => {
                Some(World::restore(&snap, engine, backend, None))
            }
            _ => None,
        }
    } else {
        None
    };
    let mut world =
        restored.unwrap_or_else(|| World::build_with_options(scenario, engine, backend));
    let end = scenario.duration_secs;
    let mut t = world.now().as_secs_f64() + every;
    while t < end {
        world.run_until(SimTime::from_secs_f64(t));
        save_snapshot(ckpt, &world.snapshot(scenario))?;
        t += every;
    }
    let report = world.run();
    std::fs::remove_file(ckpt).ok();
    Ok(report)
}

/// What a sweep produced, plus enough bookkeeping to reason about resume
/// and throughput. Only `points`/`cells` are aggregate *data*; everything
/// else (notably `wall_secs`) is measurement and excluded from identity
/// comparisons.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One figure point per cell, in canonical cell order.
    pub points: Vec<SweepPoint>,
    /// The cells, parallel to `points`.
    pub cells: Vec<CellKey>,
    /// Runs in the expanded plan.
    pub runs_total: usize,
    /// Runs executed this invocation.
    pub runs_executed: usize,
    /// Runs replayed from the journal.
    pub runs_replayed: usize,
    /// Work-stealing chunks executed.
    pub chunks: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds of the execute+reduce phase (measurement only).
    pub wall_secs: f64,
}

/// Execute a manifest. See [`run_manifest_with`] for the tweak-accepting
/// variant.
pub fn run_manifest(
    manifest: &SweepManifest,
    opts: &SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    run_manifest_with(manifest, opts, None)
}

/// Execute a manifest with an optional scenario tweak.
///
/// Expansion → journal replay (resume) → work-stealing execution of the
/// remainder (checkpointing each finished chunk) → canonical reduce.
pub fn run_manifest_with(
    manifest: &SweepManifest,
    opts: &SweepOptions,
    tweak: Option<&ScenarioTweak<'_>>,
) -> Result<SweepOutcome, SweepError> {
    let start = Instant::now();
    let plan = manifest.expand()?;
    let fnv = manifest.fingerprint();
    let threads = if opts.threads == 0 {
        rayon::current_num_threads()
    } else {
        opts.threads
    }
    .max(1);

    // Phase 1: replay. `done` maps run ID → journalled record.
    let mut done: HashMap<String, RunRecord> = HashMap::new();
    let mut journal: Option<Mutex<JournalWriter>> = None;
    if let Some(path) = &opts.journal {
        if opts.resume && path.exists() {
            let replay = replay_journal(path)?;
            if replay.header.manifest_fnv != fnv {
                return Err(SweepError::Journal {
                    detail: format!(
                        "journal belongs to a different manifest \
                         (fnv {:#x}, expected {:#x})",
                        replay.header.manifest_fnv, fnv
                    ),
                });
            }
            if replay.header.runs != plan.len() as u64 {
                return Err(SweepError::Journal {
                    detail: format!(
                        "journal plan size {} != expanded plan size {}",
                        replay.header.runs,
                        plan.len()
                    ),
                });
            }
            for rec in replay.records {
                done.insert(rec.id.clone(), rec);
            }
            journal = Some(Mutex::new(JournalWriter::resume(path, replay.valid_bytes)?));
        } else {
            journal = Some(Mutex::new(JournalWriter::create(
                path,
                fnv,
                plan.len() as u64,
            )?));
        }
    }

    // Phase 2: schedule. Pending runs sorted by descending cost estimate
    // (ties broken by plan position, so the schedule is deterministic),
    // then grouped into chunks claimed via an atomic cursor.
    let base_vehicles = manifest.base_vehicles();
    let mut pending: Vec<usize> = (0..plan.len())
        .filter(|&i| !done.contains_key(&plan.runs[i].id(&plan.name)))
        .collect();
    pending.sort_by_key(|&i| (Reverse(plan.runs[i].cost(base_vehicles)), i));
    let chunk_size = if opts.chunk_size == 0 {
        (pending.len().div_ceil(threads * 8)).clamp(1, 32)
    } else {
        opts.chunk_size
    };
    let chunks: Vec<&[usize]> = pending.chunks(chunk_size).collect();

    // Phase 3: execute. Workers steal chunks; each finished chunk commits
    // its records to plan-indexed slots and (fsync'd) to the journal.
    let slots: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; plan.len()]);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let io_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let pool = rayon::ThreadPool::new(threads);
    pool.scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= chunks.len() {
                    break;
                }
                let mut batch: Vec<(usize, RunRecord)> = Vec::with_capacity(chunks[k].len());
                for &i in chunks[k] {
                    let spec = &plan.runs[i];
                    let mut scenario = spec.scenario(manifest);
                    if let Some(t) = tweak {
                        t(&mut scenario);
                    }
                    let id = spec.id(&plan.name);
                    let report = match &opts.checkpoint_dir {
                        Some(dir) => {
                            match run_one_with_checkpoints(
                                &scenario,
                                spec.engine,
                                manifest.backend,
                                &checkpoint_path(dir, &id),
                                opts.checkpoint_every_secs,
                                opts.resume,
                            ) {
                                Ok(r) => r,
                                Err(e) => {
                                    *io_error.lock().expect("error lock") =
                                        Some(SweepError::Journal {
                                            detail: format!("checkpoint for run {id}: {e}"),
                                        });
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        None => World::build_with_options(&scenario, spec.engine, manifest.backend)
                            .run(),
                    };
                    batch.push((i, RunRecord::from_report(&id, &report)));
                }
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(j) = &journal {
                    let records: Vec<RunRecord> = batch.iter().map(|(_, r)| r.clone()).collect();
                    let res = j.lock().expect("journal lock").append_chunk(&records);
                    if let Err(e) = res {
                        *io_error.lock().expect("error lock") = Some(e);
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let mut s = slots.lock().expect("slots lock");
                for (i, rec) in batch {
                    s[i] = Some(rec);
                }
            });
        }
    });
    if let Some(e) = io_error.into_inner().expect("error lock") {
        return Err(e);
    }

    // Phase 4: canonical reduce, strictly in plan order — the step that
    // makes aggregates independent of scheduling and of resume history.
    let slots = slots.into_inner().expect("slots lock");
    let mut accs: Vec<CellAccumulator> = plan
        .cells
        .iter()
        .map(|c| CellAccumulator::new(&c.label(), c.ttl_mins as f64))
        .collect();
    for (i, spec) in plan.runs.iter().enumerate() {
        let rec = match &slots[i] {
            Some(r) => r,
            None => done
                .get(&spec.id(&plan.name))
                .expect("every planned run is executed or replayed"),
        };
        accs[spec.cell].push_record(rec);
    }

    Ok(SweepOutcome {
        points: accs.iter().map(|a| a.finish()).collect(),
        cells: plan.cells.clone(),
        runs_total: plan.len(),
        runs_executed: pending.len(),
        runs_replayed: plan.len() - pending.len(),
        chunks: chunks.len(),
        threads,
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::PaperProtocol;
    use crate::sweep::{average_reports, run_sweep};

    fn tiny_manifest() -> SweepManifest {
        let mut m = SweepManifest::paper(
            "tiny",
            &[PaperProtocol::EpidemicFifo, PaperProtocol::EpidemicLifetime],
            &[30, 60],
            &[1, 2, 3],
        );
        m.base = super::super::manifest::ScenarioBase::Mini;
        m.duration_secs = 600.0;
        m
    }

    fn canon_points(o: &SweepOutcome) -> String {
        serde_json::to_string(&o.points).expect("points serialise")
    }

    #[test]
    fn orchestrator_matches_run_sweep_plus_average_reports() {
        let m = tiny_manifest();
        let plan = m.expand().unwrap();
        let outcome = run_manifest(&m, &SweepOptions::default()).unwrap();
        assert_eq!(outcome.runs_total, 12);
        assert_eq!(outcome.runs_executed, 12);
        assert_eq!(outcome.points.len(), 4);

        // Reference path: materialise every report, average per cell.
        let scenarios: Vec<Scenario> = plan.runs.iter().map(|r| r.scenario(&m)).collect();
        let reports = run_sweep(&scenarios);
        for (c, cell) in plan.cells.iter().enumerate() {
            let cell_reports: Vec<_> = plan
                .runs
                .iter()
                .zip(&reports)
                .filter(|(r, _)| r.cell == c)
                .map(|(_, rep)| rep.clone())
                .collect();
            let reference = average_reports(&cell.label(), &cell_reports).unwrap();
            let a = serde_json::to_string(&reference).unwrap();
            let b = serde_json::to_string(&outcome.points[c]).unwrap();
            assert_eq!(a, b, "cell {c} ({})", cell.label());
        }
    }

    #[test]
    fn aggregates_invariant_across_threads_and_chunk_sizes() {
        let m = tiny_manifest();
        let baseline = canon_points(
            &run_manifest(
                &m,
                &SweepOptions {
                    threads: 1,
                    ..SweepOptions::default()
                },
            )
            .unwrap(),
        );
        for (threads, chunk) in [(2, 1), (3, 2), (4, 5)] {
            let o = run_manifest(
                &m,
                &SweepOptions {
                    threads,
                    chunk_size: chunk,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                canon_points(&o),
                baseline,
                "threads={threads} chunk={chunk}"
            );
        }
    }

    #[test]
    fn journal_then_full_resume_replays_everything() {
        let dir = std::env::temp_dir().join("vdtn-exec-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.jsonl");
        let m = tiny_manifest();
        let cold = run_manifest(
            &m,
            &SweepOptions {
                journal: Some(path.clone()),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let resumed = run_manifest(
            &m,
            &SweepOptions {
                journal: Some(path.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.runs_executed, 0);
        assert_eq!(resumed.runs_replayed, 12);
        assert_eq!(canon_points(&cold), canon_points(&resumed));
        std::fs::remove_file(&path).ok();
    }

    fn canon_report(mut r: SimReport) -> String {
        r.wall_secs = 0.0;
        serde_json::to_string(&r).expect("report serialises")
    }

    #[test]
    fn per_run_checkpoints_resume_mid_run_bit_identically() {
        let dir = std::env::temp_dir().join("vdtn-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let m = tiny_manifest();
        let plan = m.expand().unwrap();
        let spec = &plan.runs[0];
        let scenario = spec.scenario(&m);
        let ckpt = checkpoint_path(&dir, &spec.id(&plan.name));
        std::fs::remove_file(&ckpt).ok();
        let reference =
            canon_report(World::build_with_options(&scenario, spec.engine, m.backend).run());

        // Straight through with periodic checkpoints: identical report,
        // and the checkpoint is cleaned up on completion.
        let straight =
            run_one_with_checkpoints(&scenario, spec.engine, m.backend, &ckpt, 120.0, false)
                .unwrap();
        assert_eq!(reference, canon_report(straight));
        assert!(!ckpt.exists(), "completed run must remove its checkpoint");

        // Simulated kill: a mid-run checkpoint is left behind; resume must
        // pick the run up there and still land on the identical report.
        let mut donor = World::build_with_options(&scenario, spec.engine, m.backend);
        donor.run_until(SimTime::from_secs_f64(300.0));
        save_snapshot(&ckpt, &donor.snapshot(&scenario)).unwrap();
        let resumed =
            run_one_with_checkpoints(&scenario, spec.engine, m.backend, &ckpt, 120.0, true)
                .unwrap();
        assert_eq!(reference, canon_report(resumed));
        assert!(!ckpt.exists());

        // A stale checkpoint from a *different* scenario is ignored, not
        // trusted: the run cold-starts and produces its own reference.
        let mut other = scenario.clone();
        other.seed += 1_000;
        let other_reference =
            canon_report(World::build_with_options(&other, spec.engine, m.backend).run());
        let mut donor = World::build_with_options(&scenario, spec.engine, m.backend);
        donor.run_until(SimTime::from_secs_f64(300.0));
        save_snapshot(&ckpt, &donor.snapshot(&scenario)).unwrap();
        let cold =
            run_one_with_checkpoints(&other, spec.engine, m.backend, &ckpt, 120.0, true).unwrap();
        assert_eq!(other_reference, canon_report(cold));
    }

    #[test]
    fn sweep_with_checkpoints_matches_plain_sweep() {
        let dir = std::env::temp_dir().join("vdtn-ckpt-sweep-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let m = tiny_manifest();
        let baseline = canon_points(&run_manifest(&m, &SweepOptions::default()).unwrap());
        let ckpt = canon_points(
            &run_manifest(
                &m,
                &SweepOptions {
                    threads: 2,
                    checkpoint_dir: Some(dir.clone()),
                    checkpoint_every_secs: 200.0,
                    ..SweepOptions::default()
                },
            )
            .unwrap(),
        );
        assert_eq!(baseline, ckpt);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
            .collect();
        assert!(leftovers.is_empty(), "completed sweep left checkpoints");
    }

    #[test]
    fn foreign_journal_is_rejected() {
        let dir = std::env::temp_dir().join("vdtn-exec-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.jsonl");
        let m = tiny_manifest();
        run_manifest(
            &m,
            &SweepOptions {
                journal: Some(path.clone()),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let mut other = m.clone();
        other.seeds.push(99);
        let err = run_manifest(
            &other,
            &SweepOptions {
                journal: Some(path.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::Journal { .. }));
        std::fs::remove_file(&path).ok();
    }
}

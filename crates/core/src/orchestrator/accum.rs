//! Streaming aggregation: O(1)-per-run cell accumulators and the compact
//! per-run record the resume journal stores.
//!
//! A production sweep is thousands of runs per cell; materialising every
//! [`SimReport`] (buffer-occupancy series, per-delivery statistics) to
//! average them at the end would make sweep memory O(runs). Instead each
//! finished run is collapsed into a [`RunRecord`] — eleven integers — and
//! folded into its cell's [`CellAccumulator`]: Welford mean/variance
//! accumulators for every figure metric plus a fixed-size deterministic
//! reservoir over per-seed delays for percentiles. Resident memory is
//! O(cells), independent of seed count.
//!
//! **Bit-identity rule:** [`CellAccumulator::push_report`] routes through
//! [`RunRecord::from_report`], so aggregating live reports and replaying
//! journalled records are the *same arithmetic on the same numbers* — a
//! resumed sweep reproduces a cold sweep's aggregates byte-for-byte. The
//! one float a record carries (the run's mean delay) is stored as raw IEEE
//! bits (`u64`), so the journal round-trip is exact by construction.

use crate::report::SimReport;
use crate::sweep::SweepPoint;
use serde::{Deserialize, Serialize};
use vdtn_sim_core::stats::{Reservoir, Welford};

/// Delay-reservoir capacity per cell: exact percentiles up to 512 seeds,
/// deterministic subsample beyond.
const DELAY_RESERVOIR_CAP: usize = 512;

/// The compact result of one run: everything the figure metrics need,
/// nothing else. This is the journal's record type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Stable run ID ([`crate::orchestrator::RunSpec::id`]).
    pub id: String,
    /// Messages created.
    pub created: u64,
    /// Unique deliveries.
    pub delivered: u64,
    /// Relay transfers.
    pub relayed: u64,
    /// Transfers started.
    pub transfers_started: u64,
    /// Transfers aborted.
    pub transfers_aborted: u64,
    /// All buffer exits that were not deliveries.
    pub dropped: u64,
    /// Payload bytes moved.
    pub bytes_transferred: u64,
    /// Contacts observed.
    pub contacts: u64,
    /// IEEE-754 bits of the run's mean end-to-end delay in **seconds**.
    /// Stored as bits so the JSONL journal round-trips it exactly.
    pub delay_mean_bits: u64,
    /// Deliveries behind that mean (0 ⇒ the mean is the empty-default 0.0).
    pub delay_count: u64,
}

impl RunRecord {
    /// Collapse a full report into the compact record.
    pub fn from_report(id: &str, r: &SimReport) -> Self {
        RunRecord {
            id: id.to_string(),
            created: r.messages.created,
            delivered: r.messages.delivered_unique,
            relayed: r.messages.relayed,
            transfers_started: r.messages.transfers_started,
            transfers_aborted: r.messages.transfers_aborted,
            dropped: r.messages.total_drops(),
            bytes_transferred: r.messages.bytes_transferred,
            contacts: r.contacts,
            delay_mean_bits: r.messages.delay.mean().to_bits(),
            delay_count: r.messages.delay.count(),
        }
    }

    /// Delivery probability — the same arithmetic as
    /// [`SimReport::delivery_probability`], so report and record paths
    /// agree bit-for-bit.
    pub fn delivery_probability(&self) -> f64 {
        if self.created == 0 {
            0.0
        } else {
            self.delivered as f64 / self.created as f64
        }
    }

    /// Mean delay in minutes — exact round-trip of the report's value.
    pub fn avg_delay_mins(&self) -> f64 {
        f64::from_bits(self.delay_mean_bits) / 60.0
    }

    /// Overhead ratio — same arithmetic as
    /// [`crate::report::MessageStats::overhead_ratio`].
    pub fn overhead_ratio(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            (self.relayed.saturating_sub(self.delivered)) as f64 / self.delivered as f64
        }
    }
}

/// Streaming aggregator for one figure cell. Constant memory per cell;
/// push order must be canonical (the plan's run order) for the reservoir
/// to be deterministic.
#[derive(Debug, Clone)]
pub struct CellAccumulator {
    label: String,
    ttl_mins: f64,
    delivery: Welford,
    delay: Welford,
    delivered: Welford,
    created: Welford,
    overhead: Welford,
    delay_samples: Reservoir,
}

impl CellAccumulator {
    /// Fresh accumulator for a `(label, ttl)` cell.
    pub fn new(label: &str, ttl_mins: f64) -> Self {
        CellAccumulator {
            label: label.to_string(),
            ttl_mins,
            delivery: Welford::new(),
            delay: Welford::new(),
            delivered: Welford::new(),
            created: Welford::new(),
            overhead: Welford::new(),
            delay_samples: Reservoir::new(DELAY_RESERVOIR_CAP),
        }
    }

    /// Fold one run record in. O(1) time and memory.
    pub fn push_record(&mut self, rec: &RunRecord) {
        self.delivery.push(rec.delivery_probability());
        let delay_mins = rec.avg_delay_mins();
        self.delay.push(delay_mins);
        self.delay_samples.push(delay_mins);
        self.delivered.push(rec.delivered as f64);
        self.created.push(rec.created as f64);
        self.overhead.push(rec.overhead_ratio());
    }

    /// Fold one full report in (collapses to a [`RunRecord`] first, so the
    /// live path and the journal-replay path share their arithmetic).
    pub fn push_report(&mut self, r: &SimReport) {
        self.push_record(&RunRecord::from_report("", r));
    }

    /// Runs folded in so far.
    pub fn runs(&self) -> u64 {
        self.delivery.count()
    }

    /// Close the cell into a figure point.
    pub fn finish(&self) -> SweepPoint {
        let n = self.delivery.count();
        let ci = |w: &Welford| {
            if n < 2 {
                0.0
            } else {
                1.96 * w.std_dev() / (n as f64).sqrt()
            }
        };
        SweepPoint {
            label: self.label.clone(),
            ttl_mins: self.ttl_mins,
            seeds: n as usize,
            delivery_probability: self.delivery.mean(),
            avg_delay_mins: self.delay.mean(),
            delivered: self.delivered.mean(),
            created: self.created.mean(),
            overhead: self.overhead.mean(),
            delivery_probability_sd: self.delivery.std_dev(),
            avg_delay_sd: self.delay.std_dev(),
            delay_p50_mins: self.delay_samples.quantile(0.5).unwrap_or(0.0),
            delay_p90_mins: self.delay_samples.quantile(0.9).unwrap_or(0.0),
            delivery_ci95: ci(&self.delivery),
            avg_delay_ci95: ci(&self.delay),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(created: u64, delivered: u64, relayed: u64, delay_secs: &[f64]) -> SimReport {
        let mut r = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        r.messages.created = created;
        r.messages.delivered_unique = delivered;
        r.messages.relayed = relayed;
        for &d in delay_secs {
            r.messages.delay.push(d);
        }
        r
    }

    #[test]
    fn record_round_trips_report_metrics_exactly() {
        let r = report(97, 31, 113, &[601.5, 1203.25, 77.0625]);
        let rec = RunRecord::from_report("x", &r);
        assert_eq!(
            rec.delivery_probability().to_bits(),
            r.delivery_probability().to_bits()
        );
        assert_eq!(rec.avg_delay_mins().to_bits(), r.avg_delay_mins().to_bits());
        assert_eq!(
            rec.overhead_ratio().to_bits(),
            r.messages.overhead_ratio().to_bits()
        );
        // And the serde round-trip of the record itself is exact: every
        // field is an integer (the one float travels as bits).
        let json = serde_json::to_string(&rec).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn report_and_record_paths_agree_bitwise() {
        let reports = [
            report(100, 50, 90, &[600.0]),
            report(100, 70, 150, &[1200.0, 300.0]),
            report(100, 0, 0, &[]),
        ];
        let mut via_reports = CellAccumulator::new("cell", 60.0);
        let mut via_records = CellAccumulator::new("cell", 60.0);
        for r in &reports {
            via_reports.push_report(r);
            via_records.push_record(&RunRecord::from_report("id", r));
        }
        let a = serde_json::to_string(&via_reports.finish()).unwrap();
        let b = serde_json::to_string(&via_records.finish()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_memory_percentiles_track_distribution() {
        let mut acc = CellAccumulator::new("big", 60.0);
        for i in 0..5_000u64 {
            // Per-run mean delays sweeping 0..5000 seconds.
            let mut r = report(10, 5, 10, &[]);
            r.messages.delay.push(i as f64);
            acc.push_report(&r);
        }
        let p = acc.finish();
        assert_eq!(p.seeds, 5_000);
        // Reservoir percentiles are approximate beyond cap but must land
        // in the right region of a uniform ramp (minutes = secs / 60).
        assert!(
            p.delay_p50_mins > 20.0 && p.delay_p50_mins < 63.0,
            "{}",
            p.delay_p50_mins
        );
        assert!(p.delay_p90_mins > p.delay_p50_mins);
        assert!(p.delivery_ci95 < 1e-9, "delivery is constant across runs");
    }
}

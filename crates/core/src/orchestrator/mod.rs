//! The sweep orchestrator: a batch experiment system over the simulator.
//!
//! Every figure in the paper — and every scaling study beyond it — is a
//! cross product of a few axes (protocol, policy, TTL, seed, fleet size,
//! engine), each cell averaged over seeds. This module turns that shape
//! into infrastructure, in four layers:
//!
//! 1. **[`manifest`]** — a serialisable [`SweepManifest`] whose
//!    [`expand`](SweepManifest::expand) produces a canonical, stable-ID'd
//!    run list: axes are deduplicated and sorted before the product is
//!    taken, so manifests that describe the same experiment expand
//!    identically regardless of how their axes were listed.
//! 2. **[`exec`]** — work-stealing execution: runs sorted by descending
//!    cost estimate, chunked, claimed through an atomic cursor on the
//!    vendored rayon pool, then reduced *in plan order* so aggregates are
//!    bit-identical at any thread count.
//! 3. **[`accum`]** — streaming aggregation: each run collapses to a
//!    compact [`RunRecord`] and folds into an O(1) [`CellAccumulator`]
//!    (Welford moments + a deterministic reservoir for percentiles), so a
//!    sweep's memory is O(cells), not O(runs × deliveries).
//! 4. **[`journal`]** — checkpointed resume: an append-only JSONL journal
//!    fsync'd per chunk; `resume` replays completed runs bit-exactly (the
//!    record's one float travels as IEEE bits) and re-executes only the
//!    remainder.
//!
//! # Example
//!
//! ```
//! use vdtn::orchestrator::SweepManifest;
//! use vdtn::presets::{PaperProtocol, PAPER_TTLS_MIN};
//!
//! let manifest = SweepManifest::paper(
//!     "figure8",
//!     &PaperProtocol::protocol_comparison(),
//!     &PAPER_TTLS_MIN,
//!     &[1, 2, 3, 4, 5],
//! );
//! let plan = manifest.expand().unwrap();
//! assert_eq!(plan.len(), 4 * 5 * 5);
//! assert_eq!(plan.cells.len(), 4 * 5);
//! // Run IDs are stable coordinates, independent of axis listing order.
//! assert!(plan.runs[0].id(&plan.name).starts_with("figure8/EpidemicLifetime/"));
//! ```

pub mod accum;
pub mod exec;
pub mod journal;
pub mod manifest;

pub use accum::{CellAccumulator, RunRecord};
pub use exec::{run_manifest, run_manifest_with, ScenarioTweak, SweepOptions, SweepOutcome};
pub use journal::{replay_journal, JournalHeader, JournalReplay, JournalWriter};
pub use manifest::{CellKey, RunSpec, ScenarioBase, SweepManifest, SweepPlan};

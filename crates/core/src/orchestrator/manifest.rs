//! Manifest-driven sweep permutation.
//!
//! A [`SweepManifest`] is a serialisable description of an experiment grid
//! — the axes every figure, ablation and scaling study in this repo is
//! some cross product of. [`SweepManifest::expand`] turns it into a
//! [`SweepPlan`]: a flat, stable-ID'd run list plus the cell list the runs
//! aggregate into.
//!
//! # Expansion contract
//!
//! Expansion is **canonical**: every axis is deduplicated and sorted into
//! a fixed order (protocols by figure order, policies by scheduling then
//! dropping rank, vehicle counts / TTLs / seeds ascending, engines ticked
//! → event → parallel) before the nested product is taken, with the axis
//! nesting order fixed as
//!
//! ```text
//! protocols × policies × vehicles × ttls × engines × seeds
//! ```
//!
//! (seeds innermost, so one cell's runs are contiguous). Two manifests
//! whose axes hold the same *sets* of values therefore expand to the same
//! run list, in the same order, with the same IDs — the property the
//! resume journal, the reduce step and the expansion proptest all lean on.

use crate::engine::EngineMode;
use crate::presets::{mini_scenario, paper_scenario, PaperProtocol};
use crate::scenario::Scenario;
use crate::sweep::SweepError;
use serde::{Deserialize, Serialize};
use vdtn_bundle::{DropPolicy, PolicyCombo, SchedulingPolicy};
use vdtn_routing::RoutingBackend;
use vdtn_sim_core::SimDuration;

/// The scenario family a manifest's runs are derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioBase {
    /// The paper's full Helsinki scenario ([`paper_scenario`]).
    Paper,
    /// The scaled-down CI variant ([`mini_scenario`]).
    Mini,
    /// An explicit scenario template: the axes override its seed, TTL,
    /// router/policy and vehicle count per run. With an empty `protocols`
    /// axis the template's own router and policy are kept.
    Custom(Box<Scenario>),
}

/// A serialisable sweep description: scenario base plus the experiment
/// axes. Empty optional axes (`policies`, `vehicles`, `engines`) mean
/// "the base default" and contribute a single implicit element to the
/// product; `protocols`, `ttls_mins` and `seeds` must be non-empty (except
/// `protocols` with a [`ScenarioBase::Custom`] base, where empty means
/// "keep the template's router").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Sweep name; prefixes run IDs and scenario names.
    pub name: String,
    /// Scenario family.
    pub base: ScenarioBase,
    /// Protocol/policy preset axis.
    pub protocols: Vec<PaperProtocol>,
    /// Scheduling/dropping override axis (empty: the preset's combo).
    pub policies: Vec<PolicyCombo>,
    /// Vehicle-count override axis (empty: the base's fleet size).
    pub vehicles: Vec<usize>,
    /// TTL axis, minutes.
    pub ttls_mins: Vec<u64>,
    /// Engine-mode axis (empty: event-driven only).
    pub engines: Vec<EngineMode>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Routing scan backend for every run.
    pub backend: RoutingBackend,
    /// Simulated-duration override in seconds (0: the base's duration).
    pub duration_secs: f64,
}

impl SweepManifest {
    /// A minimal manifest over the given presets with paper-base scenarios.
    pub fn paper(name: &str, protocols: &[PaperProtocol], ttls: &[u64], seeds: &[u64]) -> Self {
        SweepManifest {
            name: name.to_string(),
            base: ScenarioBase::Paper,
            protocols: protocols.to_vec(),
            policies: Vec::new(),
            vehicles: Vec::new(),
            ttls_mins: ttls.to_vec(),
            engines: Vec::new(),
            seeds: seeds.to_vec(),
            backend: RoutingBackend::default(),
            duration_secs: 0.0,
        }
    }

    /// Validate axis shape, returning a typed error instead of panicking.
    pub fn validate(&self) -> Result<(), SweepError> {
        let custom = matches!(self.base, ScenarioBase::Custom(_));
        if self.protocols.is_empty() && !custom {
            return Err(SweepError::EmptyAxis { axis: "protocols" });
        }
        if self.ttls_mins.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "ttls_mins" });
        }
        if self.seeds.is_empty() {
            return Err(SweepError::EmptyAxis { axis: "seeds" });
        }
        if self.duration_secs < 0.0 || !self.duration_secs.is_finite() {
            return Err(SweepError::Manifest {
                detail: format!("invalid duration_secs {}", self.duration_secs),
            });
        }
        if self.vehicles.contains(&0) {
            return Err(SweepError::Manifest {
                detail: "vehicles axis contains 0".into(),
            });
        }
        Ok(())
    }

    /// Expand into the canonical run list (see the module docs for the
    /// ordering contract).
    pub fn expand(&self) -> Result<SweepPlan, SweepError> {
        self.validate()?;
        let protocols = canon_axis(&self.protocols, protocol_rank);
        let policies = canon_axis(&self.policies, policy_rank);
        let vehicles = canon_axis(&self.vehicles, |&v| v);
        let ttls = canon_axis(&self.ttls_mins, |&t| t);
        let engines = canon_axis(&self.engines, engine_rank);
        let seeds = canon_axis(&self.seeds, |&s| s);

        // Optional axes contribute one implicit `None` element.
        let protocols: Vec<Option<PaperProtocol>> = opt_axis(protocols);
        let policies: Vec<Option<PolicyCombo>> = opt_axis(policies);
        let vehicles: Vec<Option<usize>> = opt_axis(vehicles);
        let engines: Vec<EngineMode> = if engines.is_empty() {
            vec![EngineMode::EventDriven]
        } else {
            engines
        };

        let mut cells = Vec::new();
        let mut runs = Vec::new();
        for &protocol in &protocols {
            for &policy in &policies {
                for &veh in &vehicles {
                    for &ttl in &ttls {
                        for &engine in &engines {
                            let cell_index = cells.len();
                            cells.push(CellKey {
                                protocol,
                                policy,
                                vehicles: veh,
                                ttl_mins: ttl,
                                engine,
                            });
                            for &seed in &seeds {
                                runs.push(RunSpec {
                                    index: runs.len(),
                                    cell: cell_index,
                                    protocol,
                                    policy,
                                    vehicles: veh,
                                    ttl_mins: ttl,
                                    engine,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(SweepPlan {
            name: self.name.clone(),
            cells,
            runs,
        })
    }

    /// The base scenario's default vehicle count — the cost model's scale
    /// reference for runs that don't override the `vehicles` axis.
    pub fn base_vehicles(&self) -> usize {
        match &self.base {
            ScenarioBase::Paper => 40,
            ScenarioBase::Mini => 12,
            ScenarioBase::Custom(t) => t
                .groups
                .iter()
                .find(|g| !g.is_relay)
                .map(|g| g.count)
                .unwrap_or(1),
        }
    }

    /// FNV-1a fingerprint of the manifest's canonical JSON serialisation;
    /// the resume journal stores it so a journal can never silently replay
    /// into a different experiment. Axes are canonicalised (deduped and
    /// rank-sorted, exactly as [`SweepManifest::expand`] sees them) before
    /// hashing, so two manifest files that list the same axes in different
    /// orders — the same sweep — share one fingerprint and one journal.
    pub fn fingerprint(&self) -> u64 {
        let mut canon = self.clone();
        canon.protocols = canon_axis(&self.protocols, protocol_rank);
        canon.policies = canon_axis(&self.policies, policy_rank);
        canon.vehicles = canon_axis(&self.vehicles, |&v| v);
        canon.ttls_mins = canon_axis(&self.ttls_mins, |&t| t);
        canon.engines = canon_axis(&self.engines, engine_rank);
        canon.seeds = canon_axis(&self.seeds, |&s| s);
        let json = serde_json::to_string(&canon).expect("manifest serialises");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Deduplicate and sort one axis by a rank key, preserving values.
fn canon_axis<T: Clone, K: Ord>(axis: &[T], rank: impl Fn(&T) -> K) -> Vec<T> {
    let mut v = axis.to_vec();
    v.sort_by_key(|a| rank(a));
    v.dedup_by(|a, b| rank(a) == rank(b));
    v
}

/// Lift an optional axis: empty becomes the single implicit default.
fn opt_axis<T>(axis: Vec<T>) -> Vec<Option<T>> {
    if axis.is_empty() {
        vec![None]
    } else {
        axis.into_iter().map(Some).collect()
    }
}

/// Canonical protocol order: the order the figures introduce them.
fn protocol_rank(p: &PaperProtocol) -> u8 {
    match p {
        PaperProtocol::EpidemicFifo => 0,
        PaperProtocol::EpidemicRandom => 1,
        PaperProtocol::EpidemicLifetime => 2,
        PaperProtocol::SnwFifo => 3,
        PaperProtocol::SnwRandom => 4,
        PaperProtocol::SnwLifetime => 5,
        PaperProtocol::MaxProp => 6,
        PaperProtocol::Prophet => 7,
    }
}

fn scheduling_rank(s: &SchedulingPolicy) -> u8 {
    match s {
        SchedulingPolicy::Fifo => 0,
        SchedulingPolicy::Random => 1,
        SchedulingPolicy::LifetimeDesc => 2,
        SchedulingPolicy::LifetimeAsc => 3,
        SchedulingPolicy::SmallestFirst => 4,
        SchedulingPolicy::YoungestFirst => 5,
        SchedulingPolicy::FewestHops => 6,
    }
}

fn dropping_rank(d: &DropPolicy) -> u8 {
    match d {
        DropPolicy::Fifo => 0,
        DropPolicy::LifetimeAsc => 1,
        DropPolicy::Random => 2,
        DropPolicy::LargestFirst => 3,
        DropPolicy::Tail => 4,
        DropPolicy::MostHops => 5,
    }
}

fn policy_rank(p: &PolicyCombo) -> (u8, u8) {
    (scheduling_rank(&p.scheduling), dropping_rank(&p.dropping))
}

fn engine_rank(e: &EngineMode) -> u8 {
    match e {
        EngineMode::Ticked => 0,
        EngineMode::EventDriven => 1,
        EngineMode::Parallel => 2,
    }
}

/// Short engine tag for run IDs and labels.
fn engine_tag(e: EngineMode) -> &'static str {
    match e {
        EngineMode::Ticked => "ticked",
        EngineMode::EventDriven => "event",
        EngineMode::Parallel => "parallel",
    }
}

/// One aggregation cell: every axis except the seed. Runs sharing a cell
/// are averaged into one [`crate::sweep::SweepPoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellKey {
    /// Protocol preset (`None`: a custom template's own router).
    pub protocol: Option<PaperProtocol>,
    /// Policy override (`None`: the preset/template combo).
    pub policy: Option<PolicyCombo>,
    /// Vehicle-count override (`None`: the base fleet).
    pub vehicles: Option<usize>,
    /// TTL, minutes.
    pub ttl_mins: u64,
    /// Engine mode the cell's runs execute on.
    pub engine: EngineMode,
}

impl CellKey {
    /// Figure-legend label. Equals the protocol's own label when every
    /// optional axis is at its default, so figure rows keep their names.
    pub fn label(&self) -> String {
        let mut label = match self.protocol {
            Some(p) => p.label().to_string(),
            None => String::new(),
        };
        if let Some(pol) = self.policy {
            if !label.is_empty() {
                label.push(' ');
            }
            label.push_str(&pol.label());
        }
        if label.is_empty() {
            label.push_str("template");
        }
        if let Some(v) = self.vehicles {
            label.push_str(&format!(" v{v}"));
        }
        if self.engine != EngineMode::EventDriven {
            label.push_str(&format!(" [{}]", engine_tag(self.engine)));
        }
        label
    }
}

/// One run of the expanded sweep: the cell coordinates plus the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Position in the canonical run list (the reduce order).
    pub index: usize,
    /// Index into [`SweepPlan::cells`].
    pub cell: usize,
    /// Protocol preset (`None`: custom template router).
    pub protocol: Option<PaperProtocol>,
    /// Policy override.
    pub policy: Option<PolicyCombo>,
    /// Vehicle-count override.
    pub vehicles: Option<usize>,
    /// TTL, minutes.
    pub ttl_mins: u64,
    /// Engine mode to run on.
    pub engine: EngineMode,
    /// Master seed.
    pub seed: u64,
}

impl RunSpec {
    /// Stable run ID: a pure function of the cell coordinates and seed,
    /// independent of axis listing order (the journal's primary key).
    pub fn id(&self, sweep_name: &str) -> String {
        let proto = match self.protocol {
            Some(p) => format!("{p:?}"),
            None => "template".to_string(),
        };
        let policy = match self.policy {
            Some(p) => format!("{:?}-{:?}", p.scheduling, p.dropping),
            None => "preset".to_string(),
        };
        let veh = match self.vehicles {
            Some(v) => v.to_string(),
            None => "base".to_string(),
        };
        format!(
            "{sweep_name}/{proto}/{policy}/v{veh}/ttl{}/{}/s{}",
            self.ttl_mins,
            engine_tag(self.engine),
            self.seed
        )
    }

    /// Relative execution cost used to sort chunks largest-first: vehicle
    /// count (the dominant scale axis) times TTL (a proxy for buffer
    /// pressure and message lifetime).
    pub fn cost(&self, base_vehicles: usize) -> u64 {
        self.vehicles.unwrap_or(base_vehicles.max(1)) as u64 * self.ttl_mins.max(1)
    }

    /// Materialise the scenario for this run.
    pub fn scenario(&self, manifest: &SweepManifest) -> Scenario {
        let mut s = match (&manifest.base, self.protocol) {
            (ScenarioBase::Paper, Some(p)) => paper_scenario(p, self.ttl_mins, self.seed),
            (ScenarioBase::Mini, Some(p)) => mini_scenario(p, self.ttl_mins, self.seed),
            (ScenarioBase::Custom(t), proto) => {
                let mut s = (**t).clone();
                s.seed = self.seed;
                s.traffic.ttl = SimDuration::from_mins(self.ttl_mins);
                if let Some(p) = proto {
                    let (router, policy) = p.config();
                    s.router = router;
                    s.policy = policy;
                }
                s
            }
            (_, None) => unreachable!("validate() requires protocols for preset bases"),
        };
        if let Some(policy) = self.policy {
            s.policy = policy;
        }
        if let Some(v) = self.vehicles {
            if let Some(g) = s.groups.iter_mut().find(|g| !g.is_relay) {
                g.count = v;
            }
        }
        if manifest.duration_secs > 0.0 {
            s.duration_secs = manifest.duration_secs;
        }
        s.name = format!("{}/{}", manifest.name, self.id(&manifest.name));
        s
    }
}

/// The expanded sweep: the canonical run list plus its cell list.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Sweep name (from the manifest).
    pub name: String,
    /// Aggregation cells, in canonical order.
    pub cells: Vec<CellKey>,
    /// Runs, in canonical order (seeds contiguous per cell).
    pub runs: Vec<RunSpec>,
}

impl SweepPlan {
    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the plan holds no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> SweepManifest {
        SweepManifest::paper(
            "t",
            &[PaperProtocol::EpidemicLifetime, PaperProtocol::EpidemicFifo],
            &[90, 60],
            &[3, 1, 2],
        )
    }

    #[test]
    fn expansion_is_canonical_and_total() {
        let plan = manifest().expand().unwrap();
        assert_eq!(plan.len(), 2 * 2 * 3);
        assert_eq!(plan.cells.len(), 4);
        // Canonical order: EpidemicFifo before EpidemicLifetime, TTLs and
        // seeds ascending, regardless of manifest listing order.
        assert_eq!(plan.runs[0].protocol, Some(PaperProtocol::EpidemicFifo));
        assert_eq!(plan.runs[0].ttl_mins, 60);
        assert_eq!(plan.runs[0].seed, 1);
        assert_eq!(plan.runs[1].seed, 2);
        let ids: Vec<String> = plan.runs.iter().map(|r| r.id("t")).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "run IDs must be unique");
    }

    #[test]
    fn expansion_order_stable_under_axis_permutation() {
        let a = manifest().expand().unwrap();
        let mut m = manifest();
        m.protocols.reverse();
        m.ttls_mins.reverse();
        m.seeds = vec![2, 3, 1, 1, 2];
        let b = m.expand().unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn empty_axes_are_typed_errors() {
        let mut m = manifest();
        m.seeds.clear();
        assert!(matches!(
            m.expand(),
            Err(SweepError::EmptyAxis { axis: "seeds" })
        ));
        let mut m = manifest();
        m.protocols.clear();
        assert!(matches!(
            m.expand(),
            Err(SweepError::EmptyAxis { axis: "protocols" })
        ));
    }

    #[test]
    fn custom_base_keeps_template_router_when_protocols_empty() {
        let template = crate::presets::mini_scenario(PaperProtocol::SnwLifetime, 45, 9);
        let mut m = manifest();
        m.base = ScenarioBase::Custom(Box::new(template.clone()));
        m.protocols.clear();
        let plan = m.expand().unwrap();
        assert_eq!(plan.cells.len(), 2); // ttl axis only
        let s = plan.runs[0].scenario(&m);
        assert_eq!(s.router, template.router);
        assert_eq!(s.seed, 1);
        assert_eq!(s.traffic.ttl, SimDuration::from_mins(60));
    }

    #[test]
    fn scenario_matches_preset_builder() {
        let m = manifest();
        let plan = m.expand().unwrap();
        let r = &plan.runs[0];
        let s = r.scenario(&m);
        let reference = paper_scenario(PaperProtocol::EpidemicFifo, 60, 1);
        // Same physics; only the name is rewritten by the sweep.
        assert_eq!(s.router, reference.router);
        assert_eq!(s.policy, reference.policy);
        assert_eq!(s.traffic, reference.traffic);
        assert_eq!(s.duration_secs, reference.duration_secs);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = manifest().fingerprint();
        let mut m = manifest();
        assert_eq!(a, m.fingerprint());
        m.seeds.push(99);
        assert_ne!(a, m.fingerprint());
    }

    #[test]
    fn cell_labels_default_to_protocol_labels() {
        let plan = manifest().expand().unwrap();
        assert_eq!(plan.cells[0].label(), "Epidemic FIFO-FIFO");
        let cell = CellKey {
            protocol: Some(PaperProtocol::EpidemicFifo),
            policy: None,
            vehicles: Some(100),
            ttl_mins: 60,
            engine: EngineMode::Parallel,
        };
        assert_eq!(cell.label(), "Epidemic FIFO-FIFO v100 [parallel]");
    }
}

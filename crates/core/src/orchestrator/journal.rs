//! Checkpointed resume: the append-only JSONL run journal.
//!
//! Format: one JSON object per line. The first line is a
//! [`JournalHeader`] binding the file to a specific manifest (FNV
//! fingerprint + expected run count); every following line is one
//! [`RunRecord`]. Records are appended a chunk at a time and `fsync`'d per
//! chunk, so after a kill the journal holds every *completed* chunk plus at
//! most one torn line, which [`replay_journal`] detects and discards.
//! Resume truncates the file back to its last complete line and appends
//! from there — the journal never holds two records for one run.
//!
//! Everything in a record is an integer (the one float travels as IEEE
//! bits), so replaying a record is bit-exact: a resumed sweep's aggregates
//! equal a cold sweep's byte-for-byte.

use super::accum::RunRecord;
use crate::sweep::SweepError;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;

/// Journal file magic.
const MAGIC: &str = "vdtn-sweep";
/// Journal format version.
const VERSION: u32 = 1;

/// First line of every journal: which experiment this file belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// File magic, always `"vdtn-sweep"`.
    pub journal: String,
    /// Format version.
    pub version: u32,
    /// FNV fingerprint of the manifest that produced the journal
    /// ([`crate::orchestrator::SweepManifest::fingerprint`]).
    pub manifest_fnv: u64,
    /// Total runs the expanded plan holds (not how many are journalled).
    pub runs: u64,
}

/// The readable content of a journal: its header, every complete record in
/// append order, and the byte length of the complete prefix (everything
/// past it is a torn tail from a kill mid-write).
#[derive(Debug)]
pub struct JournalReplay {
    /// Parsed header line.
    pub header: JournalHeader,
    /// Complete records, in append order.
    pub records: Vec<RunRecord>,
    /// Bytes of the valid prefix; resume truncates the file to this.
    pub valid_bytes: u64,
}

/// Read a journal, keeping every complete record and measuring the valid
/// prefix. A torn or malformed tail line is discarded (that is the normal
/// kill signature); a bad header is an error.
pub fn replay_journal(path: &Path) -> Result<JournalReplay, SweepError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut offset: u64 = 0;

    let n = reader.read_line(&mut line)?;
    if n == 0 || !line.ends_with('\n') {
        return Err(SweepError::Journal {
            detail: "missing or torn header line".into(),
        });
    }
    let header: JournalHeader =
        serde_json::from_str(line.trim_end()).map_err(|e| SweepError::Journal {
            detail: format!("unparseable header: {e}"),
        })?;
    if header.journal != MAGIC {
        return Err(SweepError::Journal {
            detail: format!("bad magic `{}`", header.journal),
        });
    }
    if header.version != VERSION {
        return Err(SweepError::Journal {
            detail: format!("unsupported version {}", header.version),
        });
    }
    offset += n as u64;

    let mut records = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        if !line.ends_with('\n') {
            break; // torn tail: the write was cut mid-line
        }
        match serde_json::from_str::<RunRecord>(line.trim_end()) {
            Ok(rec) => {
                offset += n as u64;
                records.push(rec);
            }
            Err(_) => break, // malformed tail: stop at the valid prefix
        }
    }
    Ok(JournalReplay {
        header,
        records,
        valid_bytes: offset,
    })
}

/// Appending side of the journal. One instance per sweep; the executor
/// serialises access behind a mutex and calls [`JournalWriter::append_chunk`]
/// once per completed chunk.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Create (truncate) a journal and write + fsync its header.
    pub fn create(path: &Path, manifest_fnv: u64, runs: u64) -> Result<Self, SweepError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let header = JournalHeader {
            journal: MAGIC.to_string(),
            version: VERSION,
            manifest_fnv,
            runs,
        };
        let line = serde_json::to_string(&header).expect("header serialises");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(JournalWriter { file })
    }

    /// Reopen an existing journal for resume: truncate away any torn tail
    /// (`valid_bytes` from [`replay_journal`]) and position at the end.
    pub fn resume(path: &Path, valid_bytes: u64) -> Result<Self, SweepError> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter { file })
    }

    /// Append one chunk's records and fsync — the checkpoint boundary.
    pub fn append_chunk(&mut self, records: &[RunRecord]) -> Result<(), SweepError> {
        let mut buf = String::new();
        for rec in records {
            buf.push_str(&serde_json::to_string(rec).expect("records serialise"));
            buf.push('\n');
        }
        self.file.write_all(buf.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> RunRecord {
        RunRecord {
            id: format!("run-{i}"),
            created: 100 + i,
            delivered: 50,
            relayed: 80,
            transfers_started: 90,
            transfers_aborted: 5,
            dropped: 20,
            bytes_transferred: 1_000_000,
            contacts: 40,
            delay_mean_bits: (600.0f64 + i as f64).to_bits(),
            delay_count: 50,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vdtn-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_and_resume_after_torn_tail() {
        let path = tmp("torn.jsonl");
        let mut w = JournalWriter::create(&path, 0xDEAD_BEEF, 4).unwrap();
        w.append_chunk(&[record(0), record(1)]).unwrap();
        drop(w);

        // Simulate a kill mid-write: append half a record line.
        let full = serde_json::to_string(&record(2)).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(full.as_bytes()[..full.len() / 2].as_ref())
            .unwrap();
        drop(f);

        let replay = replay_journal(&path).unwrap();
        assert_eq!(replay.header.manifest_fnv, 0xDEAD_BEEF);
        assert_eq!(replay.header.runs, 4);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1], record(1));

        // Resume truncates the torn tail and appends cleanly.
        let mut w = JournalWriter::resume(&path, replay.valid_bytes).unwrap();
        w.append_chunk(&[record(2), record(3)]).unwrap();
        drop(w);
        let replay = replay_journal(&path).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.records[3], record(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign.jsonl");
        std::fs::write(
            &path,
            "{\"journal\":\"other\",\"version\":1,\"manifest_fnv\":1,\"runs\":1}\n",
        )
        .unwrap();
        assert!(matches!(
            replay_journal(&path),
            Err(SweepError::Journal { .. })
        ));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            replay_journal(&path),
            Err(SweepError::Journal { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_floats_survive_the_text_round_trip_exactly() {
        let mut rec = record(7);
        rec.delay_mean_bits = (1.0f64 / 3.0).to_bits(); // awkward mantissa
        let path = tmp("bits.jsonl");
        let mut w = JournalWriter::create(&path, 1, 1).unwrap();
        w.append_chunk(std::slice::from_ref(&rec)).unwrap();
        drop(w);
        let replay = replay_journal(&path).unwrap();
        assert_eq!(replay.records[0].delay_mean_bits, rec.delay_mean_bits);
        assert_eq!(f64::from_bits(replay.records[0].delay_mean_bits), 1.0 / 3.0);
        std::fs::remove_file(&path).ok();
    }
}

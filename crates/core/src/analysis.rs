//! Offline analysis of simulation logs.
//!
//! Two tools, both standard in the DTN literature:
//!
//! * [`oracle_delays`] — the omniscient-routing lower bound: the earliest
//!   time each message *could* have been delivered given the actual contact
//!   intervals, assuming instantaneous transfers and infinite buffers. Any
//!   protocol's delay/delivery sits between this bound and nothing.
//! * [`MeetingModel`] — the exponential inter-contact approximation used for
//!   back-of-envelope checks (expected pair meeting rate, expected epidemic
//!   first-delivery delay in a homogeneous-mixing model).

use crate::logging::SimLog;
use vdtn_sim_core::{SimDuration, SimTime};

/// Earliest possible delivery time per message under omniscient routing.
///
/// Classic time-ordered relaxation over contact intervals: a copy at node
/// `u` with arrival time `t_u` crosses contact `(u, v, [s, e])` if
/// `t_u ≤ e`, arriving at `max(s, t_u)`. Instant transfers make a single
/// pass over contacts sorted by *end* time insufficient (copies can hop
/// across several concurrent contacts at one instant), so we iterate to a
/// fixed point — contact lists are small enough that this converges in a
/// couple of passes.
///
/// Returns, per message (in `log.messages` order), `Some(delay)` if the
/// destination was reachable before the TTL and the horizon, else `None`.
pub fn oracle_delays(log: &SimLog) -> Vec<Option<SimDuration>> {
    log.messages
        .iter()
        .map(|msg| {
            let deadline = msg.expiry().min(log.horizon);
            let mut arrival: Vec<SimTime> = vec![SimTime::MAX; log.node_count];
            arrival[msg.src.index()] = msg.created;
            // Fixed-point relaxation.
            loop {
                let mut changed = false;
                for c in &log.contacts {
                    if c.start > deadline {
                        break; // contacts are sorted by start time
                    }
                    for (from, to) in [(c.a, c.b), (c.b, c.a)] {
                        let t_from = arrival[from.index()];
                        if t_from == SimTime::MAX || t_from > c.end {
                            continue;
                        }
                        let t_arrive = t_from.max(c.start);
                        if t_arrive <= deadline && t_arrive < arrival[to.index()] {
                            arrival[to.index()] = t_arrive;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            let t_dst = arrival[msg.dst.index()];
            (t_dst != SimTime::MAX && t_dst <= deadline).then(|| t_dst.since(msg.created))
        })
        .collect()
}

/// Summary of the oracle bound over a whole log.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSummary {
    /// Messages whose destination was reachable in time.
    pub deliverable: usize,
    /// Total messages.
    pub total: usize,
    /// Mean oracle delay over deliverable messages, minutes.
    pub mean_delay_mins: f64,
}

/// Run the oracle and summarise.
pub fn oracle_summary(log: &SimLog) -> OracleSummary {
    let delays = oracle_delays(log);
    let deliverable: Vec<f64> = delays.iter().flatten().map(|d| d.as_mins_f64()).collect();
    OracleSummary {
        deliverable: deliverable.len(),
        total: delays.len(),
        mean_delay_mins: if deliverable.is_empty() {
            0.0
        } else {
            deliverable.iter().sum::<f64>() / deliverable.len() as f64
        },
    }
}

/// Homogeneous-mixing meeting model (exponential inter-contact times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeetingModel {
    /// Pairwise meeting rate λ (contacts per second per pair).
    pub lambda: f64,
    /// Number of nodes.
    pub n: usize,
}

impl MeetingModel {
    /// Fit λ from a log: total contacts / (pairs × horizon).
    pub fn fit(log: &SimLog) -> MeetingModel {
        let pairs = log.node_count * (log.node_count.saturating_sub(1)) / 2;
        let horizon = log.horizon.as_secs_f64();
        let lambda = if pairs == 0 || horizon == 0.0 {
            0.0
        } else {
            log.contacts.len() as f64 / (pairs as f64 * horizon)
        };
        MeetingModel {
            lambda,
            n: log.node_count,
        }
    }

    /// Expected delay of *direct delivery* (wait for the destination):
    /// `1 / λ` seconds.
    pub fn expected_direct_delay_secs(&self) -> f64 {
        if self.lambda == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.lambda
        }
    }

    /// Expected epidemic first-delivery delay in the Markov flooding model
    /// (Zhang et al.): time for an infection starting at one node to reach
    /// one designated node, `E[T] ≈ (1/λ) · H(n−1) / (n−1)` where
    /// `H` is the harmonic number — the standard closed form
    /// `sum_{k=1}^{n-1} 1 / (k (n - k))` rewritten.
    pub fn expected_epidemic_delay_secs(&self) -> f64 {
        if self.lambda == 0.0 || self.n < 2 {
            return f64::INFINITY;
        }
        let n = self.n as f64;
        let sum: f64 = (1..self.n).map(|k| 1.0 / (k as f64 * (n - k as f64))).sum();
        sum / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logging::ContactRecord;
    use vdtn_bundle::{Message, MessageId};
    use vdtn_sim_core::NodeId;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn msg(id: u64, src: u32, dst: u32, created: f64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(src),
            NodeId(dst),
            1000,
            t(created),
            SimDuration::from_mins(ttl_min),
        )
    }

    fn contact(a: u32, b: u32, s: f64, e: f64) -> ContactRecord {
        ContactRecord {
            a: NodeId(a),
            b: NodeId(b),
            start: t(s),
            end: t(e),
        }
    }

    #[test]
    fn oracle_direct_contact() {
        let log = SimLog {
            contacts: vec![contact(0, 1, 100.0, 110.0)],
            messages: vec![msg(0, 0, 1, 50.0, 60)],
            node_count: 2,
            horizon: t(1000.0),
        };
        let d = oracle_delays(&log);
        // Created at 50, contact opens at 100 → delay 50 s.
        assert_eq!(d[0], Some(SimDuration::from_secs(50)));
    }

    #[test]
    fn oracle_multi_hop_chain() {
        // 0→1 at [10,20], 1→2 at [30,40]: message 0→2 created at 0
        // arrives at 30 via the chain.
        let log = SimLog {
            contacts: vec![contact(0, 1, 10.0, 20.0), contact(1, 2, 30.0, 40.0)],
            messages: vec![msg(0, 0, 2, 0.0, 60)],
            node_count: 3,
            horizon: t(1000.0),
        };
        assert_eq!(oracle_delays(&log)[0], Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn oracle_respects_contact_order() {
        // The relay contact happens BEFORE the source contact: unusable.
        let log = SimLog {
            contacts: vec![contact(1, 2, 10.0, 20.0), contact(0, 1, 30.0, 40.0)],
            messages: vec![msg(0, 0, 2, 0.0, 60)],
            node_count: 3,
            horizon: t(1000.0),
        };
        assert_eq!(oracle_delays(&log)[0], None);
    }

    #[test]
    fn oracle_instantaneous_multi_hop_within_overlap() {
        // Overlapping contacts allow a same-instant two-hop path at t=35.
        let log = SimLog {
            contacts: vec![contact(0, 1, 30.0, 50.0), contact(1, 2, 35.0, 55.0)],
            messages: vec![msg(0, 0, 2, 0.0, 60)],
            node_count: 3,
            horizon: t(1000.0),
        };
        assert_eq!(oracle_delays(&log)[0], Some(SimDuration::from_secs(35)));
    }

    #[test]
    fn oracle_ttl_and_horizon_cut_off() {
        let log = SimLog {
            contacts: vec![contact(0, 1, 120.0, 130.0)],
            messages: vec![
                msg(0, 0, 1, 0.0, 1), // TTL 60 s < contact at 120 s
                msg(1, 0, 1, 0.0, 60),
            ],
            node_count: 2,
            horizon: t(90.0), // horizon also before the contact
        };
        let d = oracle_delays(&log);
        assert_eq!(d[0], None);
        assert_eq!(d[1], None);
    }

    #[test]
    fn oracle_needs_backward_pass() {
        // Contacts listed by start time: (1,2) starts first but stays open;
        // (0,1) opens later. The copy must traverse (0,1) then the still-open
        // (1,2) — catching this requires the fixed-point iteration.
        let log = SimLog {
            contacts: vec![contact(1, 2, 10.0, 100.0), contact(0, 1, 50.0, 60.0)],
            messages: vec![msg(0, 0, 2, 0.0, 60)],
            node_count: 3,
            horizon: t(1000.0),
        };
        assert_eq!(oracle_delays(&log)[0], Some(SimDuration::from_secs(50)));
    }

    #[test]
    fn oracle_summary_aggregates() {
        let log = SimLog {
            contacts: vec![contact(0, 1, 60.0, 70.0)],
            messages: vec![msg(0, 0, 1, 0.0, 60), msg(1, 1, 0, 3000.0, 10)],
            node_count: 2,
            horizon: t(5000.0),
        };
        let s = oracle_summary(&log);
        assert_eq!(s.total, 2);
        assert_eq!(s.deliverable, 1);
        assert!((s.mean_delay_mins - 1.0).abs() < 1e-9);
    }

    #[test]
    fn meeting_model_fit_and_bounds() {
        let log = SimLog {
            contacts: (0..100)
                .map(|i| contact(0, 1, i as f64 * 10.0, i as f64 * 10.0 + 1.0))
                .collect(),
            messages: vec![],
            node_count: 2,
            horizon: t(1000.0),
        };
        let m = MeetingModel::fit(&log);
        // 100 contacts / (1 pair × 1000 s) = 0.1 per second.
        assert!((m.lambda - 0.1).abs() < 1e-12);
        assert!((m.expected_direct_delay_secs() - 10.0).abs() < 1e-9);
        // With n = 2 the epidemic bound equals direct delivery.
        assert!((m.expected_epidemic_delay_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn epidemic_model_faster_with_more_nodes() {
        let a = MeetingModel {
            lambda: 0.001,
            n: 5,
        };
        let b = MeetingModel {
            lambda: 0.001,
            n: 40,
        };
        assert!(b.expected_epidemic_delay_secs() < a.expected_epidemic_delay_secs());
        assert!(a.expected_epidemic_delay_secs() < a.expected_direct_delay_secs());
    }

    #[test]
    fn degenerate_models() {
        let m = MeetingModel { lambda: 0.0, n: 10 };
        assert!(m.expected_direct_delay_secs().is_infinite());
        assert!(m.expected_epidemic_delay_secs().is_infinite());
        let empty = SimLog::default();
        let f = MeetingModel::fit(&empty);
        assert_eq!(f.lambda, 0.0);
    }
}

//! The simulation engine.
//!
//! [`World`] advances a scenario in ticks (1 s in the paper's setup), each
//! executing seven phases in this order — the same phase structure the ONE
//! simulator uses:
//!
//! 1. **traffic**: due messages are created at their sources;
//! 2. **movement**: mobile nodes advance along their models;
//! 3. **connectivity**: the contact detector diffs the in-range pair set;
//!    link-down events abort in-flight transfers (settling partial bytes
//!    analytically from elapsed drain time) and close contacts, link-up
//!    events open connections and exchange protocol digests;
//! 4. **transfers**: transfers whose exact drain instant
//!    ([`vdtn_net::Transfer::completion_time`] = `started + size/rate`) has
//!    passed complete, in ordered-pair-key order; completions are handed to
//!    the receiving router (which may deliver, store — evicting via its
//!    drop policy — or reject);
//! 5. **routing round**: every idle connection asks the endpoint routers
//!    (alternating initiative per tick) for the next message to send, as
//!    ordered by the scheduling policy;
//! 6. **TTL sweep**: expired messages leave the buffers;
//! 7. **sampling**: optional time-series collectors.
//!
//! # Hybrid event-driven scheduling
//!
//! The engine runs in one of three [`EngineMode`]s producing **bit-identical
//! reports** (property-tested in `tests/engine_equivalence.rs`):
//!
//! * [`EngineMode::Ticked`] executes every tick and scans every node in
//!   every phase — the straightforward reference implementation.
//! * [`EngineMode::EventDriven`] (the default) keeps the exact same phase
//!   semantics but schedules [`EngineEvent`] wake-ups in a deterministic
//!   [`EventQueue`] — traffic creation times, per-node movement decision
//!   boundaries ([`EngineEvent::MovementWake`] at each exported
//!   [`vdtn_geo::Segment`]'s expiry), conservative contact-window deadlines
//!   ([`EngineEvent::ContactWindow`], fed by the detector's slack-deadline
//!   heap), per-transfer byte-drain instants
//!   ([`EngineEvent::TransferComplete`], scheduled once at transfer start),
//!   per-node TTL expiries, sample boundaries, plus a per-tick re-arm while
//!   some idle connection could still produce a transfer
//!   ([`EngineEvent::LinkRound`], re-armed only while a direction is not
//!   provably silent). Ticks with no due wake-up are provably work-free for
//!   every phase and are skipped in O(1) (the clock jumps straight to the
//!   next wake-up); executed ticks restrict each phase to its active
//!   frontier: only nodes at a decision boundary advance their movement
//!   models (every other position follows its motion segment's closed form
//!   analytically — see ARCHITECTURE.md's *motion segment protocol*), only
//!   nodes whose slack deadline is due re-examine their radio
//!   neighbourhood, and TTL housekeeping touches only buffers whose
//!   earliest expiry is due (per-buffer expiry min-heaps).
//! * [`EngineMode::Parallel`] runs the event-driven driver but shards the
//!   two per-tick hot phases across a pinned thread pool: kinematic
//!   contact re-queries are partitioned by [`ShardMap`] spatial region
//!   (merged back in sorted pair-key order before any state changes — see
//!   [`ContactDetector::update_kinematic_sharded`]), and the routing
//!   round is split into a read-only parallel *scan* that plans one
//!   verdict per idle direction from round-start state, followed by a
//!   serial *commit* that walks the canonical pair order applying plans
//!   (and evaluating RNG-drawing or cache-mutating directions inline).
//!   Because every cross-thread output is slot-indexed and merged in the
//!   same canonical order the serial engines use, reports are byte-equal
//!   to both other modes at *every* thread count (the invariance matrix in
//!   `tests/engine_equivalence.rs` pins pool sizes 1/2/4/8). The sharded
//!   parallel round is documented in depth in ARCHITECTURE.md.
//!
//! Events are conservative wake-up markers, never obligations: each
//! executed tick re-derives the actual work from simulation state, so a
//! stale or duplicate event costs one wasted wake-up, not correctness.
//!
//! Orthogonally to the engine mode, the routing round's scan cost is set by
//! the [`RoutingBackend`]: under the default `Index` backend the policy
//! routers patch per-direction candidate sets from buffer delta logs
//! ([`vdtn_routing::candidates`]) so a round after a buffer change touches
//! O(changes) candidates, while `Rescan` keeps the cursor-only full-rescan
//! path as the reference. The engine's wiring is confined to three spots:
//! buffers are [`vdtn_bundle::Buffer::watch`]ed at build when any router
//! wants deltas, offered messages are recorded through
//! [`ContactOffers::record`] (which retires them from both directions'
//! indexes), and the silent-round memo keys the sender buffer by its delta
//! summary ([`vdtn_bundle::Buffer::insert_count`]) so sender-side removals
//! keep a direction silent.
//!
//! All randomness flows through per-node derived RNG lanes, and every RNG
//! draw happens inside phase work that both modes execute identically, so
//! runs are bit-reproducible across modes and independent runs can execute
//! in parallel.

use crate::logging::{SimLog, SimLogBuilder};
use crate::report::{DropCause, Sample, SimReport};
use crate::scenario::{place_relays_high_degree, MobilitySpec, RelayPlacement, Scenario};
use crate::snapshot::{LinkSnapshot, NodeSnapshot, TransferSnapshot, WorldSnapshot};
use std::sync::Arc;
use vdtn_bundle::{Message, MessageId, TrafficConfig, TrafficGenerator};
use vdtn_geo::{Point, Segment, ShardMap};
use vdtn_mobility::{restore_mover, MovementModel, ShortestPathMapBased, Stationary};
use vdtn_net::{
    pair_key, ContactDetector, ContactTrace, LinkEvent, LinkTable, MotionCols, TransferOutcome,
};
use vdtn_routing::offers::SilenceKey;
use vdtn_routing::{ContactOffers, NodeState, ReceiveOutcome, Router, RoutingBackend};
use vdtn_sim_core::{EngineEvent, EventQueue, NodeId, SimDuration, SimRng, SimTime, StateHash};

/// Split two distinct mutable references out of a slice.
fn pair_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "pair_mut needs distinct indices");
    if i < j {
        let (left, right) = v.split_at_mut(j);
        (&mut left[i], &mut right[0])
    } else {
        let (left, right) = v.split_at_mut(i);
        (&mut right[0], &mut left[j])
    }
}

/// How the engine advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum EngineMode {
    /// Execute every tick, scanning every node in every phase. The
    /// reference implementation: simple, obviously correct, and kept as the
    /// equivalence oracle for the event-driven path.
    Ticked,
    /// Hybrid event-driven scheduling (see the [module docs](self)): skip
    /// provably work-free ticks and restrict executed phases to their
    /// active frontier. Bit-identical to `Ticked` and much faster whenever
    /// parts of the scenario are quiescent, so it is the default.
    #[default]
    EventDriven,
    /// The event-driven driver with the two per-tick hot phases — contact
    /// re-query and the routing round's scan — sharded across a pinned
    /// thread pool by spatial region, with shard outputs merged in
    /// canonical order before any state mutates. Bit-identical to both
    /// other modes at every thread count (`VDTN_THREADS` pins the pool;
    /// see [`World::build_parallel_with_threads`] for an explicit count).
    Parallel,
}

/// Scheduler-efficiency counters. Deliberately **not** part of
/// [`SimReport`]: the three engine modes produce byte-identical reports
/// while doing very different amounts of work, and these counters describe
/// the work side. The bench harness reads them through
/// [`World::run_with_stats`] to emit the per-size `motion` section of
/// `BENCH_engine.json`.
#[derive(Debug, Default, Clone, Copy, serde::Serialize)]
pub struct EngineStats {
    /// Grid ticks actually executed.
    pub ticks_executed: u64,
    /// Grid ticks skipped outright (no due wake-up anywhere).
    pub ticks_skipped: u64,
    /// Mobile (non-stationary) nodes in the world.
    pub mobile_nodes: u64,
    /// Movement-model advances executed. The ticked reference performs
    /// `mobile_nodes × (ticks_executed + ticks_skipped)` of these; the
    /// event engine only advances a model at its decision boundaries, so
    /// `1 − movement_advances / movement_node_ticks` is the movement
    /// skip rate.
    pub movement_advances: u64,
    /// Movement steps the per-tick reference loop would have executed:
    /// `mobile_nodes × total ticks`.
    pub movement_node_ticks: u64,
}

impl EngineStats {
    /// Fraction of per-node movement steps the scheduler avoided, in
    /// `[0, 1]` (zero when the world has no mobile nodes).
    pub fn movement_skip_rate(&self) -> f64 {
        if self.movement_node_ticks == 0 {
            return 0.0;
        }
        1.0 - self.movement_advances as f64 / self.movement_node_ticks as f64
    }
}

/// Parallel-mode machinery: a pinned worker pool plus the fixed spatial
/// shard tiling work is partitioned by. The tiling is built once from the
/// initial layout and never depends on the thread count, so shard
/// assignment — and therefore every merge order — is reproducible across
/// pool sizes.
struct ParState {
    pool: rayon::ThreadPool,
    shards: ShardMap,
}

impl ParState {
    fn new(positions: &[Point], range: f64, threads: usize) -> ParState {
        // Near-square lattice scaled with the node count: sqrt(n) shards
        // keeps shard populations around sqrt(n) nodes, plenty of slack to
        // balance work across any realistic pool while staying cheap to
        // group. Thread count deliberately plays no part.
        let target = (positions.len() as f64).sqrt().ceil().max(1.0) as usize;
        ParState {
            pool: rayon::ThreadPool::new(threads),
            shards: ShardMap::build(positions, range.max(f64::MIN_POSITIVE), target),
        }
    }
}

/// One idle connection's routing-round work item in the parallel round:
/// the pair, its owning spatial shard, exclusive access to its per-contact
/// offer state (pulled out of the contact map once per round), and the
/// direction plans the scan fills in.
struct PairWork<'a> {
    a: NodeId,
    b: NodeId,
    shard: u32,
    offers: &'a mut ContactOffers,
    plan: PlanState,
}

#[derive(Clone, Copy)]
enum PlanState {
    /// Some direction's router mutates shared state or draws RNG in
    /// `next_transfer` (Random scheduling, or the cursor-rescan backend's
    /// schedule cache): the commit evaluates both directions inline,
    /// exactly like the serial round, preserving RNG lanes and caches.
    Deferred,
    /// Shared pair awaiting its scan verdicts.
    Pending,
    /// Scan output: one verdict per direction, in initiative order.
    Planned { first: DirPlan, second: DirPlan },
}

#[derive(Clone, Copy)]
enum DirPlan {
    /// The initiative direction sent, so this direction was never
    /// consulted — matching the serial round's short-circuit.
    NotScanned,
    /// The router named this message; the commit starts the transfer.
    Send(MessageId),
    /// The round is `None` under this state snapshot; the commit records
    /// the silence memo (idempotent when the memo already held this key).
    Silent(SilenceKey),
}

/// A running simulation.
pub struct World {
    mode: EngineMode,
    tick: SimDuration,
    end: SimTime,
    now: SimTime,
    tick_index: u64,
    radio_rate: f64,

    movers: Vec<Box<dyn MovementModel>>,
    /// Materialised per-node positions. The ticked loop refreshes every
    /// mobile entry each tick; the event engine refreshes an entry only
    /// when its model advances (decision boundaries) and answers position
    /// queries from the kinematics columns instead.
    positions: Vec<Point>,
    /// Structure-of-arrays kinematics columns: node `i`'s current motion
    /// segment is `(seg_origin[i], seg_vel[i], seg_start[i], seg_until[i])`
    /// — refreshed from [`MovementModel::motion`] whenever the model
    /// advances, and always covering the current tick. Positions derived
    /// from these via [`Segment::position_at`] are bit-identical to the
    /// stepped positions the ticked loop materialises.
    seg_origin: Vec<Point>,
    seg_vel: Vec<Point>,
    seg_start: Vec<SimTime>,
    seg_until: Vec<SimTime>,
    /// Global speed cap: max over all movers' [`MovementModel::max_speed`].
    v_glob: f64,
    states: Vec<NodeState>,
    routers: Vec<Box<dyn Router>>,
    node_rngs: Vec<SimRng>,

    detector: ContactDetector,
    links: LinkTable,
    traffic: TrafficGenerator,
    /// Per-connection offer state: ids already offered during the contact
    /// (TTL-pruned so long contacts stay bounded), the per-direction resume
    /// cursors into the cached schedule orders, and the per-direction
    /// payload-byte counters (`[lower id, higher id]` of the pair key).
    /// Indexed by the connection's [`LinkTable`] slot handle, so lookups are
    /// a vector index and the table's length is bounded by *peak
    /// concurrent* connections (freed slots are reused).
    contacts: Vec<Option<ContactOffers>>,

    trace: ContactTrace,
    report: SimReport,
    sample_period: Option<SimDuration>,
    next_sample: SimTime,
    /// Optional full contact/message log (enabled by [`World::run_logged`]).
    log: Option<SimLogBuilder>,

    // --- Event-driven scheduling state (maintained only in EventDriven
    //     mode; Ticked mode never reads it) ---
    /// Pending wake-ups, popped per executed tick.
    events: EventQueue<EngineEvent>,
    /// Per-node next movement decision boundary — `seg_until[i]` for mobile
    /// nodes, [`SimTime::MAX`] for stationary ones. Advancing a model
    /// before its boundary is a contractual no-op
    /// (see [`MovementModel::next_decision_time`]).
    mover_wake: Vec<SimTime>,
    /// Nodes whose `MovementWake` popped this tick (scratch).
    movement_due: Vec<u32>,
    /// Per-node earliest scheduled TTL wake (`SimTime::MAX` = none). Always
    /// a lower bound on the buffer's earliest expiry.
    ttl_wake: Vec<SimTime>,
    /// Dedup flag for the singleton per-tick `LinkRound` re-arm.
    link_round_scheduled: bool,
    /// Earliest outstanding `ContactWindow` wake (`SimTime::MAX` = none):
    /// a later-or-equal detector deadline is already covered and needs no
    /// new event.
    contact_window_scheduled: SimTime,
    /// Scheduler-efficiency counters (see [`EngineStats`]).
    stats: EngineStats,
    /// Scratch ([`EngineMode::Parallel`] only): completion wakes from this
    /// tick's routing round, held back until the re-arm decision so wakes
    /// provably covered by an already-scheduled next-tick event are never
    /// pushed onto the heap at all.
    pending_transfer_wakes: Vec<(SimTime, NodeId, NodeId)>,
    /// Worker pool + shard tiling, present only in [`EngineMode::Parallel`].
    par: Option<ParState>,
}

impl World {
    /// Materialise a scenario into a runnable world using the default
    /// (event-driven) scheduler.
    ///
    /// Panics (with a descriptive message) on invalid configuration — see
    /// [`Scenario::validate`].
    pub fn build(scenario: &Scenario) -> World {
        Self::build_with_mode(scenario, EngineMode::default())
    }

    /// Materialise a scenario with an explicit [`EngineMode`]. Both modes
    /// produce bit-identical reports; `Ticked` exists as the equivalence
    /// reference and for pathological scenarios where nothing is ever
    /// quiescent (see ARCHITECTURE.md).
    pub fn build_with_mode(scenario: &Scenario, mode: EngineMode) -> World {
        Self::build_with_options(scenario, mode, RoutingBackend::default())
    }

    /// Materialise a scenario with an explicit engine mode *and* routing
    /// scan backend. All four combinations produce bit-identical reports
    /// (`tests/engine_equivalence.rs`); [`RoutingBackend::Rescan`] exists
    /// as the cursor-only reference for the delta-maintained candidate
    /// index and for the index-vs-cursor benches.
    pub fn build_with_options(
        scenario: &Scenario,
        mode: EngineMode,
        backend: RoutingBackend,
    ) -> World {
        Self::build_full(scenario, mode, backend, None)
    }

    /// Materialise a scenario on the [`EngineMode::Parallel`] engine with an
    /// explicit worker-pool size, bypassing the `VDTN_THREADS` environment
    /// override. The report is bit-identical at every `threads` value —
    /// this constructor exists so the thread-count-invariance tests and the
    /// bench harness can pin pool sizes without touching process state.
    pub fn build_parallel_with_threads(
        scenario: &Scenario,
        backend: RoutingBackend,
        threads: usize,
    ) -> World {
        Self::build_full(scenario, EngineMode::Parallel, backend, Some(threads))
    }

    fn build_full(
        scenario: &Scenario,
        mode: EngineMode,
        backend: RoutingBackend,
        threads: Option<usize>,
    ) -> World {
        scenario.validate();
        let root = SimRng::seed_from_u64(scenario.seed);
        let map = Arc::new(scenario.map.build(&mut root.derive("map", 0)));
        assert!(
            map.vertex_count() >= 2,
            "scenario map must have at least two vertices"
        );

        let n = scenario.node_count();
        // One metadata arena for the whole world: every logical message's
        // immutable header is interned once, and the per-node buffers store
        // dense handles instead of repeating the metadata per replica.
        let arena = Arc::new(vdtn_bundle::MessageArena::new());
        let mut movers: Vec<Box<dyn MovementModel>> = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        let mut routers = Vec::with_capacity(n);
        let mut node_rngs = Vec::with_capacity(n);
        let mut endpoints = Vec::new();

        let mut next_id: u32 = 0;
        for group in &scenario.groups {
            // Stationary placements are computed once per group.
            let relay_points: Option<Vec<Point>> = match &group.mobility {
                MobilitySpec::Stationary(RelayPlacement::HighDegreeSpread) => {
                    Some(place_relays_high_degree(&map, group.count))
                }
                MobilitySpec::Stationary(RelayPlacement::Explicit(points)) => {
                    assert_eq!(
                        points.len(),
                        group.count,
                        "group '{}' has {} nodes but {} explicit positions",
                        group.name,
                        group.count,
                        points.len()
                    );
                    // Snap to the road network, as relays sit at crossroads.
                    Some(
                        points
                            .iter()
                            .map(|&p| map.position(map.nearest_vertex(p).expect("non-empty map")))
                            .collect(),
                    )
                }
                MobilitySpec::ShortestPathMapBased(_) => None,
            };

            for k in 0..group.count {
                let id = NodeId(next_id);
                next_id += 1;
                let mover: Box<dyn MovementModel> = match &group.mobility {
                    MobilitySpec::ShortestPathMapBased(cfg) => Box::new(ShortestPathMapBased::new(
                        map.clone(),
                        *cfg,
                        root.derive("mobility", id.0 as u64),
                    )),
                    MobilitySpec::Stationary(_) => Box::new(Stationary::new(
                        relay_points.as_ref().expect("computed above")[k],
                    )),
                };
                movers.push(mover);
                states.push(NodeState::with_arena(
                    id,
                    group.buffer_bytes,
                    group.is_relay,
                    arena.clone(),
                ));
                routers.push(
                    scenario
                        .router
                        .build_with_backend(id, n, scenario.policy, backend),
                );
                node_rngs.push(root.derive("policy", id.0 as u64));
                if !group.is_relay {
                    endpoints.push(id);
                }
            }
        }

        // Delta-log subscription: when the routers patch per-direction
        // candidate indexes from buffer deltas, every buffer must record
        // its membership changes — each direction consumes the *sender's*
        // and the *receiver's* log. Purely an optimisation contract: an
        // unwatched buffer degrades the index to rebuild-per-change, never
        // to a wrong answer.
        if routers.iter().any(|r| r.wants_buffer_deltas()) {
            for state in &mut states {
                state.buffer.watch();
            }
        }

        let traffic = TrafficGenerator::new(
            TrafficConfig {
                interval_lo: scenario.traffic.interval_lo,
                interval_hi: scenario.traffic.interval_hi,
                size_lo: scenario.traffic.size_lo,
                size_hi: scenario.traffic.size_hi,
                ttl: scenario.traffic.ttl,
                endpoints,
            },
            root.derive("traffic", 0),
        );

        let positions: Vec<Point> = movers.iter().map(|m| m.position()).collect();
        let policy_label = match &scenario.router {
            vdtn_routing::RouterKind::Prophet(_) | vdtn_routing::RouterKind::MaxProp(_) => {
                String::new()
            }
            _ => scenario.policy.label(),
        };

        let tick = SimDuration::from_secs_f64(scenario.tick_secs);
        let sample_period = (scenario.sample_period_secs > 0.0)
            .then(|| SimDuration::from_secs_f64(scenario.sample_period_secs));

        // Kinematics columns: every model's exported motion segment at
        // t = 0, stored column-wise, plus the global speed cap the
        // detector's slack deadlines divide by.
        let mut seg_origin = Vec::with_capacity(n);
        let mut seg_vel = Vec::with_capacity(n);
        let mut seg_start = Vec::with_capacity(n);
        let mut seg_until = Vec::with_capacity(n);
        for m in &movers {
            let seg = m.motion();
            seg_origin.push(seg.origin);
            seg_vel.push(seg.velocity);
            seg_start.push(seg.start);
            seg_until.push(seg.until);
        }
        let v_glob = movers.iter().map(|m| m.max_speed()).fold(0.0, f64::max);
        let mobile_nodes = movers.iter().filter(|m| !m.is_stationary()).count() as u64;

        // Prime the wake-up schedule. Harmless under Ticked mode (never
        // popped), essential under EventDriven.
        let mover_wake: Vec<SimTime> = movers.iter().map(|m| m.next_decision_time()).collect();
        let mut events = EventQueue::with_capacity(n + 8);
        events.schedule(traffic.peek_time(), EngineEvent::TrafficDue);
        for (i, &wake) in mover_wake.iter().enumerate() {
            if wake < SimTime::MAX {
                events.schedule(wake, EngineEvent::MovementWake(NodeId(i as u32)));
            }
        }
        // The first tick always executes: it primes contact detection on the
        // initial layout, exactly like the ticked loop's first scan.
        events.schedule(SimTime::ZERO + tick, EngineEvent::ContactRecheck);
        if sample_period.is_some() {
            events.schedule(SimTime::ZERO, EngineEvent::Sample);
        }

        let par = (mode == EngineMode::Parallel).then(|| {
            ParState::new(
                &positions,
                scenario.radio.range,
                threads.unwrap_or_else(rayon::current_num_threads),
            )
        });

        World {
            mode,
            tick,
            end: SimTime::ZERO + SimDuration::from_secs_f64(scenario.duration_secs),
            now: SimTime::ZERO,
            tick_index: 0,
            radio_rate: scenario.radio.rate,
            movers,
            positions,
            seg_origin,
            seg_vel,
            seg_start,
            seg_until,
            v_glob,
            states,
            routers,
            node_rngs,
            detector: ContactDetector::new(scenario.detector, scenario.radio),
            links: LinkTable::with_nodes(n),
            traffic,
            contacts: Vec::new(),
            trace: ContactTrace::new(),
            report: SimReport {
                scenario: scenario.name.clone(),
                router: scenario.router.label().to_string(),
                policy: policy_label,
                seed: scenario.seed,
                duration_secs: scenario.duration_secs,
                ttl_mins: scenario.traffic.ttl.as_mins_f64(),
                ..SimReport::default()
            },
            sample_period,
            next_sample: SimTime::ZERO,
            log: None,
            events,
            mover_wake,
            movement_due: Vec::new(),
            ttl_wake: vec![SimTime::MAX; n],
            link_round_scheduled: false,
            contact_window_scheduled: SimTime::MAX,
            stats: EngineStats {
                mobile_nodes,
                ..EngineStats::default()
            },
            pending_transfer_wakes: Vec::new(),
            par,
        }
    }

    /// True when the world runs on the event-driven driver (both
    /// [`EngineMode::EventDriven`] and [`EngineMode::Parallel`] do; only
    /// the ticked reference polls instead of scheduling wake-ups).
    fn event_driven(&self) -> bool {
        self.mode != EngineMode::Ticked
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The scheduling mode this world was built with.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// Read access to a node's store-and-forward state (tests, examples).
    pub fn node_state(&self, id: NodeId) -> &NodeState {
        &self.states[id.index()]
    }

    /// Current position of a node.
    ///
    /// The ticked reference reads the materialised per-tick position; the
    /// event-driven modes evaluate the node's motion segment at the current
    /// clock — the same closed form the model's own stepping uses, so the
    /// two answers are bit-identical (asserted per tick in
    /// `event_mode_matches_ticked_stepwise`).
    pub fn node_position(&self, id: NodeId) -> Point {
        let i = id.index();
        if self.event_driven() {
            self.segment(i).position_at(self.now)
        } else {
            self.positions[i]
        }
    }

    /// Reassemble node `i`'s motion segment from the kinematics columns.
    #[inline]
    fn segment(&self, i: usize) -> Segment {
        Segment {
            origin: self.seg_origin[i],
            velocity: self.seg_vel[i],
            start: self.seg_start[i],
            until: self.seg_until[i],
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Scheduler-efficiency counters accumulated so far (see
    /// [`EngineStats`]). Meaningful for the event-driven modes; the ticked
    /// reference reports a zero skip rate by construction.
    pub fn engine_stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.movement_node_ticks = s.mobile_nodes * (s.ticks_executed + s.ticks_skipped);
        s
    }

    /// Run to completion and return the final report.
    pub fn run(mut self) -> SimReport {
        let t0 = std::time::Instant::now();
        self.run_to_end();
        self.finish(t0).0
    }

    /// Run to completion, returning the report plus the scheduler's
    /// efficiency counters (the bench harness's entry point for the
    /// `motion` section of `BENCH_engine.json`).
    pub fn run_with_stats(mut self) -> (SimReport, EngineStats) {
        let t0 = std::time::Instant::now();
        self.run_to_end();
        let stats = self.engine_stats();
        (self.finish(t0).0, stats)
    }

    /// Run to completion, additionally recording the full contact/message
    /// log for offline analysis (see [`crate::analysis`]).
    pub fn run_logged(mut self) -> (SimReport, SimLog) {
        self.log = Some(SimLogBuilder::default());
        let t0 = std::time::Instant::now();
        self.run_to_end();
        let (report, log) = self.finish(t0);
        (report, log.expect("logging was enabled"))
    }

    fn run_to_end(&mut self) {
        self.run_until(self.end);
    }

    /// Advance the simulation to the first tick boundary at or past `stop`
    /// (clamped to the run horizon), preserving each mode's scheduling
    /// discipline — the event-driven modes still skip work-free ticks.
    ///
    /// Splitting a run into `run_until` segments is exact: skipped-tick
    /// arithmetic is pure time arithmetic, so `run_until(t)` followed by
    /// `run_until(end)` reproduces `run()` bit-for-bit. This is what the
    /// hash-stream driver and the checkpoint/restore machinery build on.
    pub fn run_until(&mut self, stop: SimTime) {
        let stop = stop.min(self.end);
        match self.mode {
            EngineMode::Ticked => {
                while self.now < stop {
                    self.step_ticked();
                }
            }
            EngineMode::EventDriven | EngineMode::Parallel => self.run_event_until(stop),
        }
    }

    /// Advance one tick (in any mode; the event-driven variants execute
    /// the same tick, frontier-limited).
    pub fn step(&mut self) {
        match self.mode {
            EngineMode::Ticked => self.step_ticked(),
            EngineMode::EventDriven | EngineMode::Parallel => self.step_event(),
        }
    }

    /// Event-driven driver: execute only ticks with a due wake-up, jumping
    /// the clock (and the tick counter, which phase 5 uses for initiative
    /// parity) across provably work-free ticks. Runs to the first tick
    /// boundary at or past `stop` (callers clamp to the horizon).
    fn run_event_until(&mut self, stop: SimTime) {
        let tick_ms = self.tick.as_millis().max(1);
        while self.now < stop {
            let now_ms = self.now.as_millis();
            let ticks_to_end = (stop.as_millis() - now_ms).div_ceil(tick_ms);
            let ticks_to_wake = match self.events.peek_time() {
                Some(t) => t
                    .as_millis()
                    .saturating_sub(now_ms)
                    .div_ceil(tick_ms)
                    .max(1),
                None => u64::MAX,
            };
            if ticks_to_wake > ticks_to_end {
                // Nothing left can happen before the horizon: fast-forward
                // to exactly where the ticked loop would stop.
                self.tick_index += ticks_to_end;
                self.now += self.tick * ticks_to_end;
                self.stats.ticks_skipped += ticks_to_end;
                return;
            }
            let skipped = ticks_to_wake - 1;
            self.tick_index += skipped;
            self.now += self.tick * skipped;
            self.stats.ticks_skipped += skipped;
            self.step_event();
        }
    }

    /// Reference tick: full per-phase scans, exactly the classic loop.
    fn step_ticked(&mut self) {
        let prev = self.now;
        self.now += self.tick;
        let now = self.now;

        // Phase 1: traffic.
        self.phase_traffic(now);

        // Phase 2: movement.
        for (i, mover) in self.movers.iter_mut().enumerate() {
            if !mover.is_stationary() {
                self.positions[i] = mover.step(prev, self.tick);
            }
        }
        self.stats.ticks_executed += 1;
        self.stats.movement_advances += self.stats.mobile_nodes;

        // Phase 3: connectivity (downs are emitted before ups).
        let events = self.detector.update(&self.positions);
        self.apply_link_events(events);

        // Phase 4: transfer progress.
        self.phase_transfers();

        // Phase 5: routing round.
        self.phase_routing();

        // Phase 6: TTL sweep.
        for i in 0..self.states.len() {
            self.expire_node(i, now);
        }

        // Phase 7: sampling.
        self.phase_sampling(now);

        self.tick_index += 1;
    }

    /// Event-driven tick: same seven phases, each restricted to its active
    /// frontier. Wake-up events are popped as conservative markers only —
    /// every phase re-derives its work from simulation state, so stale or
    /// duplicate events are harmless.
    fn step_event(&mut self) {
        self.now += self.tick;
        let now = self.now;
        self.stats.ticks_executed += 1;

        let mut traffic_due = false;
        while let Some((_, ev)) = self.events.pop_due(now) {
            match ev {
                EngineEvent::TrafficDue => traffic_due = true,
                EngineEvent::MovementWake(id) => self.movement_due.push(id.0),
                EngineEvent::ContactWindow => self.contact_window_scheduled = SimTime::MAX,
                EngineEvent::LinkRound => self.link_round_scheduled = false,
                // TTL, sampling and transfer-completion work is re-derived
                // from `ttl_wake` / `next_sample` / the link table below.
                // In particular a TransferComplete is only a wake-up: the
                // due completions are drained from the link table in
                // pair-key order, so same-instant completions resolve
                // deterministically no matter in which order their
                // transfers started. ContactRecheck survives solely as the
                // build-time "first tick always executes" marker.
                EngineEvent::ContactRecheck
                | EngineEvent::TransferComplete(_, _)
                | EngineEvent::TtlExpiry(_)
                | EngineEvent::Sample => {}
            }
        }

        // Phase 1: traffic. The TrafficDue event tracks the generator's
        // next creation time exactly, so no flag means nothing is due.
        if traffic_due {
            self.phase_traffic(now);
            self.events
                .schedule(self.traffic.peek_time(), EngineEvent::TrafficDue);
        }

        // Phase 2: movement — only nodes whose decision boundary arrived;
        // every other node's position follows its motion segment's closed
        // form, so stepping its model would change nothing it exports.
        if !self.movement_due.is_empty() {
            self.phase_movement_event(now);
        }

        // Phase 3: connectivity — the detector re-queries only nodes whose
        // slack deadline is due. Motion-segment replacements (phase 2)
        // collapse deadlines to `now`; between boundaries the quadratic
        // contact-window bounds are exact, so a tick with no due deadline
        // provably cannot flip any pair. The first executed tick primes the
        // detector on the initial layout (the ticked loop's first scan);
        // `next_deadline()` reports `ZERO` while unprimed.
        if self.detector.next_deadline() <= now {
            let cols = MotionCols {
                origin: &self.seg_origin,
                velocity: &self.seg_vel,
                start: &self.seg_start,
                until: &self.seg_until,
            };
            // A one-thread pool pays the sharded path's grouping and merge
            // for no concurrency at all — the serial kinematic update is
            // the same diff (property-tested equal), so only real pools
            // take the sharded path.
            let events =
                match &self.par {
                    Some(par) if par.pool.num_threads() >= 2 => self
                        .detector
                        .update_kinematic_sharded(now, &cols, self.v_glob, &par.pool, &par.shards),
                    _ => self.detector.update_kinematic(now, &cols, self.v_glob),
                };
            self.apply_link_events(events);
        }
        // Arm a wake at the earliest pending slack deadline, unless an
        // earlier-or-equal ContactWindow is already outstanding.
        let deadline = self.detector.next_deadline();
        if deadline < self.contact_window_scheduled && deadline < SimTime::MAX {
            self.contact_window_scheduled = deadline;
            self.events.schedule(deadline, EngineEvent::ContactWindow);
        }

        // Phases 4 + 5: transfers and routing exist only on open contacts.
        // The routing round reports whether it ended **provably quiet** —
        // every pair still idle after the round had both directions
        // answered `None` and memoised under its current silence key, with
        // no RNG-drawing direction left — which pre-answers the `LinkRound`
        // re-arm below without a second pass over the idle pairs. With no
        // open contacts the round is vacuously quiet.
        let mut round_quiet = true;
        if self.links.connection_count() > 0 {
            self.phase_transfers();
            round_quiet = if self.par.is_some() {
                self.phase_routing_parallel()
            } else {
                self.phase_routing_tracked()
            };
        }

        // Phase 6: TTL — only buffers whose scheduled expiry wake is due;
        // `ttl_wake[i]` never exceeds the buffer's true earliest expiry.
        // TTL housekeeping is the only thing between the routing round and
        // the re-arm decision that can change a silence-key input, so the
        // round's quiet verdict stays valid exactly when no node ran it.
        let mut ttl_ran = false;
        for i in 0..self.states.len() {
            if self.ttl_wake[i] <= now {
                ttl_ran = true;
                self.expire_node(i, now);
                self.ttl_wake[i] = match self.states[i].buffer.next_expiry() {
                    Some(e) => {
                        self.events
                            .schedule(e, EngineEvent::TtlExpiry(NodeId(i as u32)));
                        e
                    }
                    None => SimTime::MAX,
                };
            }
        }

        // Phase 7: sampling.
        if self.phase_sampling(now) {
            self.events.schedule(self.next_sample, EngineEvent::Sample);
        }

        // A routing round next tick can only do work if some *idle*
        // connection has a direction that is not provably silent — busy
        // connections drain via their scheduled TransferComplete instants,
        // and every state change that could flip a silent verdict (traffic,
        // contact churn, completions, TTL expiry, deliveries) happens
        // inside an executed tick, where this re-arm is re-evaluated. The
        // routing round answers this for free in *both* directions (unless
        // TTL work ran after it and may have moved a silence-key input):
        // quiet means every idle direction is memoised silent (the sweep
        // would conclude false), loud means some idle RNG-drawing direction
        // remains (the sweep would conclude true on reaching it) — so the
        // verdict *is* `routing_work_possible()` and the sweep is skipped
        // on every non-TTL executed tick.
        let work_possible = if !ttl_ran {
            debug_assert_eq!(!round_quiet, self.routing_work_possible());
            !round_quiet
        } else {
            self.routing_work_possible()
        };
        if !self.link_round_scheduled && work_possible {
            self.link_round_scheduled = true;
            self.events
                .schedule(now + self.tick, EngineEvent::LinkRound);
        }

        // Flush the round's completion wakes (parallel mode). A wake's only
        // job is to force execution of the first grid tick at or after its
        // byte-drain instant; when some already-scheduled event lands in
        // `(now, now + tick]`, that same grid tick executes regardless, so
        // wakes completing within it are dropped — in the saturated regime
        // this strips the per-transfer heap churn entirely. Longer drains
        // (or an empty horizon) schedule exactly the serial wake.
        if !self.pending_transfer_wakes.is_empty() {
            let next_tick = now + self.tick;
            let covered = self.events.peek_time().is_some_and(|t| t <= next_tick);
            let mut wakes = std::mem::take(&mut self.pending_transfer_wakes);
            for &(completes, from, to) in &wakes {
                if !(covered && completes <= next_tick) {
                    self.events
                        .schedule(completes, EngineEvent::TransferComplete(from, to));
                }
            }
            wakes.clear();
            self.pending_transfer_wakes = wakes;
        }

        self.tick_index += 1;
    }

    /// Event-mode movement phase: advance exactly the models whose
    /// decision boundary (`mover_wake`) arrived, refresh their kinematics
    /// columns from the newly exported segments, schedule the next
    /// boundary wakes, and collapse their detector deadlines — a replaced
    /// segment invalidates every bound derived from the old velocity.
    ///
    /// `advance_to` draws each model's own RNG lane at its own boundaries,
    /// so per-node advances are order-independent; the parallel path
    /// exploits exactly that, while every observable write below happens
    /// serially in ascending node order.
    fn phase_movement_event(&mut self, now: SimTime) {
        let mut due = std::mem::take(&mut self.movement_due);
        // Pop order is heap order; canonicalise. One wake is outstanding
        // per node at a time, so duplicates cannot occur — but dedup is
        // cheap insurance on sorted input.
        due.sort_unstable();
        due.dedup();
        due.retain(|&i| self.mover_wake[i as usize] <= now);

        // Advancing a model is the expensive part (trip planning runs
        // A*); with a real pool and enough due nodes it fans out, each
        // worker owning its models exclusively.
        const PAR_DUE_MIN: usize = 32;
        let fan_out = match &self.par {
            Some(par) => par.pool.num_threads() >= 2 && due.len() >= PAR_DUE_MIN,
            None => false,
        };
        if fan_out {
            self.advance_due_parallel(&due, now);
        }

        for &iu in &due {
            let i = iu as usize;
            if !fan_out {
                self.movers[i].advance_to(now);
            }
            let seg = self.movers[i].motion();
            self.positions[i] = self.movers[i].position();
            self.seg_origin[i] = seg.origin;
            self.seg_vel[i] = seg.velocity;
            self.seg_start[i] = seg.start;
            self.seg_until[i] = seg.until;
            self.mover_wake[i] = seg.until;
            if seg.until < SimTime::MAX {
                self.events
                    .schedule(seg.until, EngineEvent::MovementWake(NodeId(iu)));
            }
            self.detector.on_motion_change(iu, now);
        }
        self.stats.movement_advances += due.len() as u64;
        due.clear();
        self.movement_due = due;
    }

    /// Advance the due movement models on the worker pool. Models are
    /// temporarily moved out of `movers` (a parked placeholder holds each
    /// slot) so every chunk owns its boxes outright; results are read back
    /// serially by the caller.
    fn advance_due_parallel(&mut self, due: &[u32], now: SimTime) {
        let pool = &self
            .par
            .as_ref()
            .expect("parallel advance needs a pool")
            .pool;
        let mut owned: Vec<(u32, Box<dyn MovementModel>)> = due
            .iter()
            .map(|&i| {
                let placeholder: Box<dyn MovementModel> =
                    Box::new(Stationary::new(Point::new(0.0, 0.0)));
                (
                    i,
                    std::mem::replace(&mut self.movers[i as usize], placeholder),
                )
            })
            .collect();
        let chunk = vdtn_sim_core::par::chunk_len(owned.len(), pool.num_threads());
        pool.scope(|s| {
            for ch in owned.chunks_mut(chunk) {
                s.spawn(move || {
                    for (_, m) in ch.iter_mut() {
                        m.advance_to(now);
                    }
                });
            }
        });
        for (i, m) in owned {
            self.movers[i as usize] = m;
        }
    }

    /// True if next tick's routing round could do anything at all: some
    /// idle connection has a direction whose router draws RNG per round
    /// (never skippable) or whose last `None` verdict is stale under the
    /// current [`vdtn_routing::offers::SilenceKey`] inputs. When this is
    /// false, phase 5 next tick is provably the empty round the ticked
    /// reference would also execute — `try_start_transfer` would
    /// short-circuit every direction without touching state or RNG — so no
    /// `LinkRound` wake is needed (the silent-round memo re-arms through
    /// here as soon as a completion frees a busy endpoint or any generation
    /// moves).
    fn routing_work_possible(&self) -> bool {
        if self.links.connection_count() == 0 {
            return false;
        }
        for (a, b, slot) in self.links.idle_contacts() {
            let Some(contact) = self.contacts.get(slot as usize).and_then(Option::as_ref) else {
                return true; // conservative: unknown state ⇒ wake
            };
            for (from, to, side) in [(a, b, 0usize), (b, a, 1usize)] {
                let rf = &self.routers[from.index()];
                if rf.next_transfer_draws_rng() {
                    return true;
                }
                let key = self.silence_key(from, to);
                if !contact.is_silent(side, &key) {
                    return true;
                }
            }
        }
        false
    }

    /// Snapshot of every input that can change a `from → to` routing-round
    /// verdict (see [`vdtn_routing::offers::SilenceKey`]). The sender-side
    /// buffer component is its **delta summary** — the insert count, not
    /// the full generation — because sender removals only shrink the
    /// candidate set and can never turn a `None` verdict into `Some`.
    fn silence_key(&self, from: NodeId, to: NodeId) -> [u64; 5] {
        [
            self.states[from.index()].buffer.insert_count(),
            self.routers[from.index()].routing_generation(),
            self.states[to.index()].buffer.generation(),
            self.routers[to.index()].routing_generation(),
            self.states[to.index()].delivered.len() as u64,
        ]
    }

    /// Phase 1: create due messages at their sources.
    fn phase_traffic(&mut self, now: SimTime) {
        for msg in self.traffic.drain_due(now) {
            self.report.messages.created += 1;
            if let Some(log) = &mut self.log {
                log.on_created(&msg);
            }
            let src = msg.src.index();
            let out = self.routers[src].on_message_created(
                &mut self.states[src],
                msg,
                now,
                &mut self.node_rngs[src],
            );
            if !out.stored {
                self.report.on_dropped(DropCause::CreationOverflow, 1);
            }
            self.report
                .on_dropped(DropCause::Congestion, out.evicted.len() as u64);
            self.refresh_ttl_wake(src);
        }
    }

    /// Phase 3 helper: apply detector events (downs first, then ups).
    fn apply_link_events(&mut self, events: Vec<LinkEvent>) {
        for ev in events {
            match ev {
                LinkEvent::Down(a, b) => self.handle_link_down(a, b),
                LinkEvent::Up(a, b) => self.handle_link_up(a, b),
            }
        }
    }

    /// Phase 4: complete transfers whose byte-drain instant has passed, in
    /// ordered-pair-key order (the deterministic tie-break for completions
    /// due at the same instant). The ticked reference polls via
    /// [`LinkTable::tick`]; the event engine reaches the same drain through
    /// [`LinkTable::complete_due`] on ticks a `TransferComplete` wake (or
    /// any other event) forces to execute — the two are the same function,
    /// which is what makes the modes structurally bit-identical here.
    fn phase_transfers(&mut self) {
        let done = match self.mode {
            EngineMode::Ticked => self.links.tick(self.now),
            EngineMode::EventDriven | EngineMode::Parallel => self.links.complete_due(self.now),
        };
        for outcome in done {
            if let TransferOutcome::Completed(t) = outcome {
                self.handle_transfer_complete(t);
            }
        }
    }

    /// Phase 5: routing round over idle connections. Initiative alternates
    /// per tick so neither endpoint of a long contact monopolises the link.
    fn phase_routing(&mut self) {
        let pairs = self.links.idle_contacts();
        for (a, b, slot) in pairs {
            if self.links.is_busy(a) || self.links.is_busy(b) {
                continue; // became busy earlier in this round
            }
            let (first, second) = if self.tick_index % 2 == 0 {
                (a, b)
            } else {
                (b, a)
            };
            if !self.try_start_transfer(first, second, slot) {
                self.try_start_transfer(second, first, slot);
            }
        }
    }

    /// Phase 5, sharded ([`EngineMode::Parallel`]): a read-mostly parallel
    /// **scan** plans one verdict per idle direction, then a serial
    /// **commit** walks the canonical pair order applying them.
    ///
    /// Bit-identity argument (expanded in ARCHITECTURE.md): nothing in
    /// phase 5 mutates buffers, routers' verdict-relevant state, or
    /// delivered sets — the only cross-pair coupling inside a round is the
    /// busy-skip, which the commit re-checks in the exact serial order. A
    /// direction's verdict is therefore a pure function of round-start
    /// state, so scanning all pairs up front (each task owning its pairs'
    /// offer state exclusively, grouped by spatial shard) computes exactly
    /// what the serial round would, regardless of thread count. Directions
    /// whose routers draw RNG or mutate schedule caches in `next_transfer`
    /// ([`Router::scan_is_shared`] is false) are not scanned at all: the
    /// commit evaluates them inline at their canonical position, so RNG
    /// lanes advance in the serial order. Scan-side cache writes (candidate
    /// index syncs) are verdict-transparent, and silence memos are written
    /// only at commit — a pair skipped by the busy re-check leaves no
    /// observable trace, exactly like serial.
    ///
    /// Returns **true iff the round ended provably quiet**: every pair the
    /// commit left idle had both directions answer `None` and memoise the
    /// verdict under its current silence key, and none of those directions
    /// draws RNG — exactly the conditions under which
    /// [`World::routing_work_possible`] would walk every idle pair only to
    /// conclude `false`. Busy pairs need no accounting: the idle set can
    /// only shrink during a round, and a pair freed by a later completion
    /// is re-examined on that completion's executed tick.
    fn phase_routing_parallel(&mut self) -> bool {
        let threads = self
            .par
            .as_ref()
            .expect("parallel routing round requires a pool")
            .pool
            .num_threads();
        if threads <= 1 {
            // A lone worker gains nothing from the scan/commit split but
            // still pays for scanning pairs the commit busy-skips (the
            // serial round never evaluates those). Plans are pure functions
            // of round-start state, so evaluating lazily at the commit slot
            // yields the same verdicts — run the serial round and track
            // the quiet verdict inline.
            return self.phase_routing_tracked();
        }
        let pairs = self.links.idle_contacts();
        if pairs.is_empty() {
            return true;
        }
        let tick_index = self.tick_index;
        let now = self.now;
        let World {
            par,
            contacts,
            links,
            routers,
            states,
            node_rngs,
            pending_transfer_wakes,
            report,
            positions,
            ..
        } = self;
        let par = par
            .as_ref()
            .expect("parallel routing round requires a pool");
        let states: &[NodeState] = states;

        // Silence pre-filter: one immutable pass in canonical order drops
        // every pair whose two directions are provably silent — exactly the
        // directions the serial round would short-circuit without touching
        // state, and exactly the sweep `routing_work_possible` would repeat
        // at re-arm time. In the saturated steady state this is nearly all
        // of them, so the scan/commit machinery below only ever pays for
        // pairs with potential work.
        let mut live: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(16);
        for &(a, b, slot) in &pairs {
            let offers = contacts[slot as usize]
                .as_ref()
                .expect("routing round only visits live connections");
            let silent = [(a, b, 0usize), (b, a, 1usize)].iter().all(|&(f, t, s)| {
                !routers[f.index()].next_transfer_draws_rng()
                    && offers.is_silent(
                        s,
                        &direction_key(f, t, states, &*routers[f.index()], &*routers[t.index()]),
                    )
            });
            if !silent {
                live.push((a, b, slot));
            }
        }
        if live.is_empty() {
            return true;
        }

        // Pull the live pairs' offer state out of the slot table in one
        // pass: a slot-indexed vector of `&mut` lets each live pair claim
        // its exclusive borrow by index, no keyed lookups anywhere.
        let mut offer_slots: Vec<Option<&mut ContactOffers>> =
            contacts.iter_mut().map(Option::as_mut).collect();
        let mut works: Vec<PairWork<'_>> = live
            .iter()
            .map(|&(a, b, slot)| {
                let offers = offer_slots[slot as usize]
                    .take()
                    .expect("routing round only visits live connections");
                let shared =
                    routers[a.index()].scan_is_shared() && routers[b.index()].scan_is_shared();
                PairWork {
                    a,
                    b,
                    shard: par.shards.pair_owner(a.0, b.0, positions),
                    offers,
                    plan: if shared {
                        PlanState::Pending
                    } else {
                        PlanState::Deferred
                    },
                }
            })
            .collect();

        // Parallel scan: shard-grouped, slot-indexed. Tasks read only
        // round-start shared state and write only their own pairs' plans
        // and offer caches, so any chunking yields the same plans.
        let mut shared_refs: Vec<&mut PairWork<'_>> = works
            .iter_mut()
            .filter(|w| matches!(w.plan, PlanState::Pending))
            .collect();
        if !shared_refs.is_empty() {
            shared_refs.sort_by_key(|w| w.shard);
            let chunk = vdtn_sim_core::par::chunk_len(shared_refs.len(), par.pool.num_threads());
            let routers: &[Box<dyn Router>] = routers;
            par.pool.scope(|scope| {
                for chunk_refs in shared_refs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for work in chunk_refs.iter_mut() {
                            scan_pair(work, states, routers, now, tick_index);
                        }
                    });
                }
            });
        }
        drop(shared_refs);

        // Serial commit in canonical pair order: the serial round, minus
        // every scan the plans already answered.
        //
        // `rng_declined` collects pairs that kept an RNG-drawing direction
        // idle (never memoised — the round stays loud for them); whether
        // such a pair is *still* idle can only be judged after the whole
        // commit, because a later pair's transfer can seize one of its
        // endpoints. Every other non-started pair ends with both directions
        // memoised silent, so it needs no accounting.
        let mut rng_declined: Vec<(NodeId, NodeId)> = Vec::new();
        for work in &mut works {
            if links.is_busy(work.a) || links.is_busy(work.b) {
                continue; // became busy earlier in this round
            }
            let key = pair_key(work.a, work.b);
            let (first, second) = if tick_index % 2 == 0 {
                (work.a, work.b)
            } else {
                (work.b, work.a)
            };
            let side1 = usize::from(first.0 != key.0);
            let offers = &mut *work.offers;
            match work.plan {
                PlanState::Deferred => {
                    let started = commit_deferred(
                        first,
                        second,
                        side1,
                        offers,
                        states,
                        routers,
                        node_rngs,
                        links,
                        pending_transfer_wakes,
                        report,
                        now,
                    ) || commit_deferred(
                        second,
                        first,
                        1 - side1,
                        offers,
                        states,
                        routers,
                        node_rngs,
                        links,
                        pending_transfer_wakes,
                        report,
                        now,
                    );
                    if !started
                        && (routers[first.index()].next_transfer_draws_rng()
                            || routers[second.index()].next_transfer_draws_rng())
                    {
                        // An RNG-drawing direction is never memoised silent:
                        // routing_work_possible() re-arms for it if the pair
                        // is still idle once the round finishes.
                        rng_declined.push((work.a, work.b));
                    }
                }
                PlanState::Planned {
                    first: d1,
                    second: d2,
                } => {
                    // Shared scans never draw RNG, so a non-started planned
                    // pair always ends with both memos set: quiet-safe.
                    if !commit_planned(
                        first,
                        second,
                        side1,
                        d1,
                        offers,
                        states,
                        links,
                        pending_transfer_wakes,
                        report,
                        now,
                    ) {
                        commit_planned(
                            second,
                            first,
                            1 - side1,
                            d2,
                            offers,
                            states,
                            links,
                            pending_transfer_wakes,
                            report,
                            now,
                        );
                    }
                }
                PlanState::Pending => unreachable!("scan fills every shared pair's plan"),
            }
        }
        !rng_declined
            .iter()
            .any(|&(a, b)| !links.is_busy(a) && !links.is_busy(b))
    }

    /// Phase 5 on a one-thread pool: [`World::phase_routing`] verbatim,
    /// plus the quiet-verdict bookkeeping the parallel commit produces.
    /// `try_start_transfer` already short-circuits silent directions and
    /// memoises fresh `None` verdicts, so a non-started pair ends either
    /// memoised silent (quiet-compatible) or holding an RNG-drawing
    /// direction (collected, then re-checked for idleness after the round
    /// — a later pair's transfer can seize one of its endpoints).
    fn phase_routing_tracked(&mut self) -> bool {
        let pairs = self.links.idle_contacts();
        let mut rng_declined: Vec<(NodeId, NodeId)> = Vec::new();
        for (a, b, slot) in pairs {
            if self.links.is_busy(a) || self.links.is_busy(b) {
                continue; // became busy earlier in this round
            }
            let (first, second) = if self.tick_index % 2 == 0 {
                (a, b)
            } else {
                (b, a)
            };
            let started = self.try_start_transfer(first, second, slot)
                || self.try_start_transfer(second, first, slot);
            if !started
                && (self.routers[first.index()].next_transfer_draws_rng()
                    || self.routers[second.index()].next_transfer_draws_rng())
            {
                rng_declined.push((a, b));
            }
        }
        !rng_declined
            .iter()
            .any(|&(a, b)| !self.links.is_busy(a) && !self.links.is_busy(b))
    }

    /// Phase 6 for one node: expire due messages and run router
    /// housekeeping.
    ///
    /// Note for [`Router`] implementors: under the event-driven scheduler
    /// `on_tick` fires only on ticks this node's TTL housekeeping runs, not
    /// once per simulated second — it must not be used as a wall clock (no
    /// in-tree router does; all are no-ops).
    fn expire_node(&mut self, i: usize, now: SimTime) {
        let expired = self.states[i].buffer.drain_expired(now);
        if !expired.is_empty() {
            let ids: Vec<MessageId> = expired.iter().map(|m| m.id).collect();
            self.routers[i].on_messages_expired(&mut self.states[i], &ids);
            self.report.on_dropped(DropCause::Expired, ids.len() as u64);
            // Prune this node's per-contact offer sets so they stay bounded
            // by live traffic over arbitrarily long contacts. Behaviour-
            // neutral (ids are never reused and expired messages are never
            // re-offered), and cursor-safe: the drain above bumped this
            // buffer's generation, so any cursor into a stale order rewinds
            // at its next scan. O(degree) via the adjacency mirror.
            let node = NodeId(i as u32);
            let arena = self.states[i].buffer.arena().clone();
            for &(_, slot) in self.links.neighbors(node) {
                if let Some(contact) = self
                    .contacts
                    .get_mut(slot as usize)
                    .and_then(Option::as_mut)
                {
                    contact.prune_expired(now, &arena);
                }
            }
        }
        self.routers[i].on_tick(&mut self.states[i], now);
    }

    /// Phase 7: record time-series samples; true if a sample was taken.
    fn phase_sampling(&mut self, now: SimTime) -> bool {
        let Some(period) = self.sample_period else {
            return false;
        };
        if now < self.next_sample {
            return false;
        }
        let occupancy = self
            .states
            .iter()
            .map(|s| s.buffer.occupancy())
            .sum::<f64>()
            / self.states.len() as f64;
        self.report.buffer_occupancy.push(Sample {
            t_secs: now.as_secs_f64(),
            value: occupancy,
        });
        self.report.deliveries_over_time.push(Sample {
            t_secs: now.as_secs_f64(),
            value: self.report.messages.delivered_unique as f64,
        });
        self.next_sample = now + period;
        true
    }

    /// Keep `ttl_wake[i]` a lower bound on buffer `i`'s earliest expiry
    /// after an insertion. Removals only ever push the earliest expiry
    /// later, which keeps the bound valid without action (the early wake
    /// fires, finds nothing due, and reschedules).
    fn refresh_ttl_wake(&mut self, i: usize) {
        if !self.event_driven() {
            return;
        }
        if let Some(e) = self.states[i].buffer.next_expiry() {
            if e < self.ttl_wake[i] {
                self.ttl_wake[i] = e;
                self.events
                    .schedule(e, EngineEvent::TtlExpiry(NodeId(i as u32)));
            }
        }
    }

    fn handle_link_up(&mut self, a: NodeId, b: NodeId) {
        let slot = self
            .links
            .link_up(a, b, self.now, self.radio_rate)
            .expect("scenario validation guarantees a finite positive radio rate");
        self.trace.on_up(a, b, self.now);
        if let Some(log) = &mut self.log {
            log.on_up(a, b, self.now);
        }
        if self.contacts.len() <= slot as usize {
            self.contacts.resize_with(slot as usize + 1, || None);
        }
        self.contacts[slot as usize] = Some(ContactOffers::new());

        // Digest exchange: both digests reflect pre-contact state.
        let da = self.routers[a.index()].digest(&self.states[a.index()], self.now);
        let db = self.routers[b.index()].digest(&self.states[b.index()], self.now);
        let purged_a =
            self.routers[a.index()].on_contact_up(&mut self.states[a.index()], b, &db, self.now);
        let purged_b =
            self.routers[b.index()].on_contact_up(&mut self.states[b.index()], a, &da, self.now);
        self.report.on_dropped(
            DropCause::AckPurge,
            (purged_a.len() + purged_b.len()) as u64,
        );
    }

    fn handle_link_down(&mut self, a: NodeId, b: NodeId) {
        let slot = self.links.slot_of(a, b);
        if let Some(TransferOutcome::Aborted {
            transfer: t,
            bytes_transferred,
        }) = self.links.link_down(a, b, self.now)
        {
            self.report.messages.transfers_aborted += 1;
            self.report.messages.bytes_aborted += bytes_transferred;
            self.routers[t.from.index()].on_transfer_aborted(
                &mut self.states[t.from.index()],
                t.msg.id,
                t.to,
            );
        }
        self.trace.on_down(a, b, self.now);
        if let Some(log) = &mut self.log {
            log.on_down(a, b, self.now);
        }
        let key = pair_key(a, b);
        let bytes = slot
            .and_then(|s| self.contacts.get_mut(s as usize).and_then(Option::take))
            .map(|c| c.sent_bytes())
            .unwrap_or([0, 0]);
        let (lo, hi) = (NodeId(key.0), NodeId(key.1));
        self.routers[lo.index()].on_contact_down(
            &mut self.states[lo.index()],
            hi,
            bytes[0],
            self.now,
        );
        self.routers[hi.index()].on_contact_down(
            &mut self.states[hi.index()],
            lo,
            bytes[1],
            self.now,
        );
    }

    fn handle_transfer_complete(&mut self, t: vdtn_net::Transfer) {
        let from = t.from.index();
        let to = t.to.index();
        self.report.messages.bytes_transferred += t.msg.size;
        // Account contact volume for MaxProp's threshold estimator.
        let key = pair_key(t.from, t.to);
        if let Some(contact) = self
            .links
            .slot_of(t.from, t.to)
            .and_then(|s| self.contacts.get_mut(s as usize).and_then(Option::as_mut))
        {
            contact.add_sent(usize::from(t.from.0 != key.0), t.msg.size);
        }

        let outcome = self.routers[to].on_message_received(
            &mut self.states[to],
            &t.msg,
            t.from,
            self.now,
            &mut self.node_rngs[to],
        );
        match outcome {
            ReceiveOutcome::Delivered { first_time } => {
                if first_time {
                    self.report
                        .on_delivered(t.msg.created, self.now, t.msg.hops + 1);
                } else {
                    self.report.messages.delivered_duplicate += 1;
                }
                self.routers[from].on_transfer_success(
                    &mut self.states[from],
                    t.msg.id,
                    t.to,
                    true,
                    self.now,
                );
            }
            ReceiveOutcome::Stored { evicted } => {
                self.report.messages.relayed += 1;
                self.report
                    .on_dropped(DropCause::Congestion, evicted.len() as u64);
                self.routers[from].on_transfer_success(
                    &mut self.states[from],
                    t.msg.id,
                    t.to,
                    false,
                    self.now,
                );
            }
            ReceiveOutcome::Rejected(_) => {
                // The bandwidth was spent but the copy was refused; the
                // sender's state is untouched (mirrors an aborted transfer).
                self.report.messages.transfers_rejected += 1;
                self.routers[from].on_transfer_aborted(&mut self.states[from], t.msg.id, t.to);
            }
        }
        self.refresh_ttl_wake(to);
    }

    /// Ask `from`'s router for a message to send to `to` over the
    /// connection at `slot`; start the transfer if it names one. Returns
    /// whether a transfer started.
    fn try_start_transfer(&mut self, from: NodeId, to: NodeId, slot: u32) -> bool {
        let key = pair_key(from, to);
        let side = usize::from(from.0 != key.0);
        // Single slot index serves the whole call: the router scans through
        // a directional view (offered set + this direction's resume cursor)
        // and a successful offer is recorded on the same borrow.
        let contact = self.contacts[slot as usize]
            .as_mut()
            .expect("routing round only visits live connections");
        let (rf, rt) = pair_mut(&mut self.routers, from.index(), to.index());

        // Silence short-circuit: if this direction answered `None` from
        // exactly this state snapshot, re-asking is provably futile (see
        // `SilenceKey` — the sender buffer contributes its insert count, so
        // sender-side removals keep the memo); skipping the scan is
        // bit-identical as long as the router draws no RNG in
        // `next_transfer`. Same inputs as `silence_key()` (inlined here
        // because the routers are already split-borrowed).
        let silence_key = [
            self.states[from.index()].buffer.insert_count(),
            rf.routing_generation(),
            self.states[to.index()].buffer.generation(),
            rt.routing_generation(),
            self.states[to.index()].delivered.len() as u64,
        ];
        let cacheable = !rf.next_transfer_draws_rng();
        if cacheable && contact.is_silent(side, &silence_key) {
            return false;
        }

        let intent = rf.next_transfer(
            &self.states[from.index()],
            &self.states[to.index()],
            &**rt,
            &mut contact.view(side),
            self.now,
            &mut self.node_rngs[from.index()],
        );
        match intent {
            Some(id) => {
                let msg = self.states[from.index()]
                    .buffer
                    .get(id)
                    .expect("router offered a message it does not hold");
                let handle = self.states[from.index()]
                    .buffer
                    .handle_of(id)
                    .expect("stored message has a handle");
                contact.record(id, handle);
                let completes = self.links.start_transfer(from, to, msg, self.now);
                if self.par.is_some() {
                    // Parallel mode holds wakes back until the re-arm
                    // decision, where redundant ones are dropped.
                    self.pending_transfer_wakes.push((completes, from, to));
                } else if self.event_driven() {
                    // One wake-up at the exact byte-drain instant; the
                    // drain itself happens in phase 4 of that tick, in
                    // pair-key order with any other due completion.
                    self.events
                        .schedule(completes, EngineEvent::TransferComplete(from, to));
                }
                self.report.messages.transfers_started += 1;
                true
            }
            None => {
                if cacheable {
                    contact.set_silent(side, silence_key);
                }
                false
            }
        }
    }

    fn finish(mut self, t0: std::time::Instant) -> (SimReport, Option<SimLog>) {
        // Tear down: in-flight transfers at the horizon count as aborted,
        // with whatever bytes were on the wire settled at the horizon.
        let aborted = self.links.clear(self.now);
        self.report.messages.transfers_aborted += aborted.len() as u64;
        for outcome in &aborted {
            if let TransferOutcome::Aborted {
                bytes_transferred, ..
            } = outcome
            {
                self.report.messages.bytes_aborted += bytes_transferred;
            }
        }
        self.trace.finish(self.now);
        self.report.contacts = self.trace.contact_count;
        self.report.mean_contact_secs = self.trace.mean_duration();
        self.report.mean_intercontact_secs = self.trace.mean_intercontact();
        self.report.wall_secs = t0.elapsed().as_secs_f64();
        let node_count = self.states.len();
        let log = self.log.take().map(|l| l.finish(node_count, self.now));
        (self.report, log)
    }
}

// --- State hashing and checkpoint/restore (see ARCHITECTURE.md, "The
//     state hash and snapshot protocol") ---

impl World {
    /// Canonical hash of the world's semantic state at the current tick
    /// boundary.
    ///
    /// **Identical by construction across all three [`EngineMode`]s and
    /// every thread count**: it folds in only state the modes keep
    /// bit-identical — the clock, positions evaluated through
    /// [`World::node_position`] (the one closed form both disciplines
    /// share), buffers in reception order, delivered sets in sorted order,
    /// router protocol state, RNG stream positions, live links with their
    /// transfers in ordered-pair-key order, the traffic stream, the
    /// contact trace, and the report counters. It deliberately excludes
    /// everything call-pattern-dependent: mover clock/position anchors,
    /// the raw kinematics columns (never refreshed between boundaries
    /// under `Ticked`), silence memos, cursors, candidate indexes, the
    /// event queue, `wall_secs`, and [`EngineStats`].
    ///
    /// Must be sampled between ticks (never mid-phase). The CI drift
    /// matrix compares streams of these hashes across the full
    /// mode × thread grid.
    pub fn state_hash(&self) -> u64 {
        let mut h = StateHash::new();
        self.hash_state(&mut h);
        h.finish()
    }

    /// Fold the canonical state into an existing [`StateHash`] (see
    /// [`World::state_hash`] for what is included and why).
    pub fn hash_state(&self, h: &mut StateHash) {
        h.write_tag("world");
        h.write_u64(self.now.as_millis());
        h.write_u64(self.tick_index);

        h.write_tag("nodes");
        h.write_len(self.states.len());
        for i in 0..self.states.len() {
            let st = &self.states[i];
            self.node_position(NodeId(i as u32)).hash_into(h);
            h.write_u64(st.buffer.used());
            let msgs: Vec<Message> = st.buffer.iter().collect();
            h.write_len(msgs.len());
            for m in &msgs {
                hash_message(h, m);
            }
            let mut delivered: Vec<MessageId> = st.delivered.iter().copied().collect();
            delivered.sort_unstable();
            h.write_len(delivered.len());
            for d in delivered {
                h.write_u64(d.0);
            }
            self.routers[i].hash_state(h);
            for w in self.node_rngs[i].state_words() {
                h.write_u64(w);
            }
        }

        h.write_tag("movers");
        for m in &self.movers {
            m.hash_state(h);
        }

        h.write_tag("traffic");
        self.traffic.hash_into(h);

        h.write_tag("links");
        let conns = self.links.connections();
        h.write_len(conns.len());
        for (a, b, up_since, rate, transfer) in conns {
            h.write_u32(a.0);
            h.write_u32(b.0);
            h.write_u64(up_since.as_millis());
            h.write_f64(rate);
            match transfer {
                Some(t) => {
                    h.write_u8(1);
                    h.write_u32(t.from.0);
                    h.write_u32(t.to.0);
                    hash_message(h, &t.msg);
                    h.write_u64(t.started.as_millis());
                    h.write_f64(t.rate);
                }
                None => h.write_u8(0),
            }
            let slot = self
                .links
                .slot_of(a, b)
                .expect("listed connection has a slot");
            match self.contacts.get(slot as usize).and_then(Option::as_ref) {
                Some(c) => {
                    h.write_u8(1);
                    c.hash_into(h);
                }
                None => h.write_u8(0),
            }
        }

        h.write_tag("trace");
        self.trace.hash_into(h);

        h.write_tag("report");
        hash_report(h, &self.report);

        h.write_tag("sampling");
        h.write_u64(self.next_sample.as_millis());
    }

    /// Capture the world's full dynamic state between two ticks.
    ///
    /// `scenario` must be the scenario this world was built from (it is
    /// embedded so [`World::restore`] can re-materialise the static side);
    /// panics if the node count disagrees. The returned snapshot restores
    /// under any engine mode and thread count.
    pub fn snapshot(&self, scenario: &Scenario) -> WorldSnapshot {
        assert_eq!(
            scenario.node_count(),
            self.states.len(),
            "snapshot scenario does not match the running world"
        );
        let nodes: Vec<NodeSnapshot> = self
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let mut delivered: Vec<MessageId> = st.delivered.iter().copied().collect();
                delivered.sort_unstable();
                NodeSnapshot {
                    buffer: st.buffer.iter().collect(),
                    delivered,
                    router: self.routers[i].snapshot_state(),
                }
            })
            .collect();
        let links: Vec<LinkSnapshot> = self
            .links
            .connections()
            .into_iter()
            .map(|(a, b, up_since, rate, transfer)| {
                let slot = self
                    .links
                    .slot_of(a, b)
                    .expect("listed connection has a slot");
                let offers = self.contacts[slot as usize]
                    .as_ref()
                    .expect("live connection has offer state");
                LinkSnapshot {
                    a,
                    b,
                    up_since,
                    rate,
                    transfer: transfer.map(|t| TransferSnapshot {
                        from: t.from,
                        to: t.to,
                        msg: t.msg,
                        started: t.started,
                    }),
                    offered: offers.offered_ids().to_vec(),
                    sent_bytes: offers.sent_bytes(),
                }
            })
            .collect();
        let (trace_open, trace_last_end) = self.trace.snapshot_maps();
        let (traffic_rng, traffic_next_time, traffic_next_id) = self.traffic.snapshot_state();
        WorldSnapshot {
            scenario: scenario.clone(),
            now: self.now,
            tick_index: self.tick_index,
            state_hash: self.state_hash(),
            nodes,
            movers: self.movers.iter().map(|m| m.snapshot()).collect(),
            node_rngs: self.node_rngs.clone(),
            traffic_rng,
            traffic_next_time,
            traffic_next_id,
            links,
            trace: self.trace.clone(),
            trace_open,
            trace_last_end,
            report: self.report.clone(),
            next_sample: self.next_sample,
        }
    }

    /// Rebuild a world from a snapshot and continue bit-identically.
    ///
    /// The engine mode and thread count are free choices — they need not
    /// match the world that took the snapshot, because the snapshot holds
    /// only mode-invariant state. The recipe: build the world fresh from
    /// the embedded scenario (static side: map, detector, pools), then
    /// overwrite every piece of dynamic state and rebuild the caches
    /// conservatively — the detector re-primes on the restored layout, the
    /// event queue is re-seeded with conservative wake-ups (stale wake-ups
    /// are harmless by the engine's events-are-markers discipline), and
    /// silence memos/cursors/candidate indexes start cold and rebuild on
    /// first use.
    ///
    /// Panics if the restored world's [`World::state_hash`] does not
    /// reproduce the snapshot's recorded hash: a failed round trip is a
    /// bug, never a degradation to tolerate.
    pub fn restore(
        snap: &WorldSnapshot,
        mode: EngineMode,
        backend: RoutingBackend,
        threads: Option<usize>,
    ) -> World {
        let scenario = &snap.scenario;
        let mut w = Self::build_full(scenario, mode, backend, threads);
        let n = w.states.len();
        assert_eq!(n, snap.nodes.len(), "snapshot node count mismatch");
        assert_eq!(n, snap.movers.len(), "snapshot mover count mismatch");
        assert_eq!(n, snap.node_rngs.len(), "snapshot RNG lane count mismatch");
        w.now = snap.now;
        w.tick_index = snap.tick_index;

        // Movers: the road graph is not stored on the world, but its
        // construction is deterministic in the scenario seed — rebuild it
        // exactly as `build_full` did.
        let root = SimRng::seed_from_u64(scenario.seed);
        let map = Arc::new(scenario.map.build(&mut root.derive("map", 0)));
        for (i, ms) in snap.movers.iter().enumerate() {
            w.movers[i] = restore_mover(ms.clone(), &map);
            // Normalise the advance anchor to the restore instant. Every
            // restored segment satisfies `until > now` (a boundary at or
            // before `now` would have been crossed before the snapshot),
            // so this stays within-segment: clock and position update, no
            // boundary crossing, no RNG draw.
            w.movers[i].advance_to(w.now);
            let seg = w.movers[i].motion();
            w.positions[i] = w.movers[i].position();
            w.seg_origin[i] = seg.origin;
            w.seg_vel[i] = seg.velocity;
            w.seg_start[i] = seg.start;
            w.seg_until[i] = seg.until;
            w.mover_wake[i] = w.movers[i].next_decision_time();
        }

        // Node state: ordered buffer re-insertion reproduces the relative
        // sequence order FIFO policies sort by; fresh buffers were
        // `watch()`ed at build, so these inserts feed the candidate-index
        // delta logs exactly like live insertions.
        for (i, ns) in snap.nodes.iter().enumerate() {
            for m in &ns.buffer {
                w.states[i]
                    .buffer
                    .insert(*m)
                    .expect("snapshot buffer contents fit the configured capacity");
            }
            w.states[i].delivered = ns.delivered.iter().copied().collect();
            w.routers[i].restore_state(ns.router.clone());
        }
        w.node_rngs = snap.node_rngs.clone();
        w.traffic = TrafficGenerator::restore(
            w.traffic.config().clone(),
            snap.traffic_rng.clone(),
            snap.traffic_next_time,
            snap.traffic_next_id,
        );

        // Links: replay `link_up` in the snapshot's ordered-pair-key order,
        // then re-start in-flight transfers at their original start
        // instants, reproducing each exact byte-drain completion time.
        // Slot handles may renumber relative to the donor world; that is
        // invisible because every link iteration walks the adjacency
        // mirror in pair-key order, never slot order.
        w.links = LinkTable::with_nodes(n);
        w.contacts = Vec::new();
        let mut inflight: Vec<(SimTime, NodeId, NodeId)> = Vec::new();
        for ls in &snap.links {
            let slot = w
                .links
                .link_up(ls.a, ls.b, ls.up_since, ls.rate)
                .expect("snapshot link rate was validated at capture");
            if w.contacts.len() <= slot as usize {
                w.contacts.resize_with(slot as usize + 1, || None);
            }
            w.contacts[slot as usize] =
                Some(ContactOffers::restore(ls.offered.clone(), ls.sent_bytes));
            if let Some(t) = &ls.transfer {
                let completes = w.links.start_transfer(t.from, t.to, t.msg, t.started);
                inflight.push((completes, t.from, t.to));
            }
        }

        w.trace = snap.trace.clone();
        w.trace
            .restore_maps(snap.trace_open.clone(), snap.trace_last_end.clone());
        w.report = snap.report.clone();
        w.next_sample = snap.next_sample;

        // Re-prime the contact detector on the restored layout, discarding
        // the events: the diff it reports is exactly the restored live-link
        // set, which the link table already holds.
        let primed = match w.mode {
            EngineMode::Ticked => w.detector.update(&w.positions),
            EngineMode::EventDriven | EngineMode::Parallel => {
                let cols = MotionCols {
                    origin: &w.seg_origin,
                    velocity: &w.seg_vel,
                    start: &w.seg_start,
                    until: &w.seg_until,
                };
                w.detector.prime_kinematic(w.now, &cols)
            }
        };
        let ups = primed
            .iter()
            .filter(|e| matches!(e, LinkEvent::Up(_, _)))
            .count();
        assert_eq!(
            (ups, primed.len() - ups),
            (snap.links.len(), 0),
            "detector re-prime disagrees with the snapshot's live-link set"
        );

        // Event queue: rebuilt from scratch with conservative wake-ups.
        // Extra executed ticks this causes are semantic no-ops (stale
        // events are markers, and every re-derived phase finds its true
        // work), so the rebuild cannot perturb the run.
        w.events = EventQueue::with_capacity(n + 8);
        w.movement_due.clear();
        w.pending_transfer_wakes.clear();
        w.link_round_scheduled = false;
        w.contact_window_scheduled = SimTime::MAX;
        w.ttl_wake = vec![SimTime::MAX; n];
        if w.event_driven() {
            w.events
                .schedule(w.traffic.peek_time(), EngineEvent::TrafficDue);
            for (i, &wake) in w.mover_wake.iter().enumerate() {
                if wake < SimTime::MAX {
                    w.events
                        .schedule(wake, EngineEvent::MovementWake(NodeId(i as u32)));
                }
            }
            // Force the first post-restore tick to execute: the re-primed
            // detector re-queries there, and the routing round re-derives
            // (and re-memoises) every idle direction's verdict.
            w.events
                .schedule(w.now + w.tick, EngineEvent::ContactRecheck);
            for &(completes, from, to) in &inflight {
                w.events
                    .schedule(completes, EngineEvent::TransferComplete(from, to));
            }
            for i in 0..n {
                if let Some(e) = w.states[i].buffer.next_expiry() {
                    w.ttl_wake[i] = e;
                    w.events
                        .schedule(e, EngineEvent::TtlExpiry(NodeId(i as u32)));
                }
            }
            if w.sample_period.is_some() {
                w.events.schedule(w.next_sample, EngineEvent::Sample);
            }
            if w.routing_work_possible() {
                w.link_round_scheduled = true;
                w.events.schedule(w.now + w.tick, EngineEvent::LinkRound);
            }
        }

        let hash = w.state_hash();
        assert_eq!(
            hash, snap.state_hash,
            "restored world does not reproduce the snapshot's state hash"
        );
        w
    }
}

/// Fold one message copy into a state hash (all fields drive behaviour:
/// identity, routing, size/drain time, TTL, FIFO order, spray quotas).
fn hash_message(h: &mut StateHash, m: &Message) {
    h.write_u64(m.id.0);
    h.write_u32(m.src.0);
    h.write_u32(m.dst.0);
    h.write_u64(m.size);
    h.write_u64(m.created.as_millis());
    h.write_u64(m.ttl.as_millis());
    h.write_u32(m.hops);
    h.write_u32(m.copies);
    h.write_u64(m.received.as_millis());
}

/// Fold the report's accumulated metrics into a state hash — everything
/// except `wall_secs` (measurement, not state) and the static labels.
fn hash_report(h: &mut StateHash, r: &SimReport) {
    let m = &r.messages;
    for c in [
        m.created,
        m.delivered_unique,
        m.delivered_duplicate,
        m.relayed,
        m.transfers_started,
        m.transfers_aborted,
        m.transfers_rejected,
        m.dropped_congestion,
        m.dropped_expired,
        m.dropped_ack,
        m.dropped_at_creation,
        m.bytes_transferred,
        m.bytes_aborted,
    ] {
        h.write_u64(c);
    }
    m.delay.hash_into(h);
    m.hops.hash_into(h);
    for series in [&r.buffer_occupancy, &r.deliveries_over_time] {
        h.write_len(series.len());
        for s in series {
            h.write_f64(s.t_secs);
            h.write_f64(s.value);
        }
    }
}

// --- Parallel routing round helpers (free functions over split borrows,
//     because the round holds `&mut ContactOffers` references across the
//     whole scan + commit) ---

/// The engine's `silence_key` recomputed from split borrows (see
/// [`SilenceKey`] for why the sender side contributes its insert count).
fn direction_key(
    from: NodeId,
    to: NodeId,
    states: &[NodeState],
    rf: &dyn Router,
    rt: &dyn Router,
) -> SilenceKey {
    [
        states[from.index()].buffer.insert_count(),
        rf.routing_generation(),
        states[to.index()].buffer.generation(),
        rt.routing_generation(),
        states[to.index()].delivered.len() as u64,
    ]
}

/// Scan one shared pair: plan the initiative direction, then the reply
/// direction only if the first plans nothing — the serial round's exact
/// short-circuit structure, evaluated from round-start state.
fn scan_pair(
    work: &mut PairWork<'_>,
    states: &[NodeState],
    routers: &[Box<dyn Router>],
    now: SimTime,
    tick_index: u64,
) {
    let key = pair_key(work.a, work.b);
    let (first, second) = if tick_index % 2 == 0 {
        (work.a, work.b)
    } else {
        (work.b, work.a)
    };
    let side1 = usize::from(first.0 != key.0);
    let d1 = scan_direction(
        first,
        second,
        side1,
        &mut *work.offers,
        states,
        routers,
        now,
    );
    let d2 = if matches!(d1, DirPlan::Send(_)) {
        DirPlan::NotScanned
    } else {
        scan_direction(
            second,
            first,
            1 - side1,
            &mut *work.offers,
            states,
            routers,
            now,
        )
    };
    work.plan = PlanState::Planned {
        first: d1,
        second: d2,
    };
}

/// One direction's scan: silence short-circuit, then the RNG-free
/// [`Router::plan_transfer`]. Returns the verdict plus the state snapshot
/// the commit needs to write the silence memo.
fn scan_direction(
    from: NodeId,
    to: NodeId,
    side: usize,
    offers: &mut ContactOffers,
    states: &[NodeState],
    routers: &[Box<dyn Router>],
    now: SimTime,
) -> DirPlan {
    let rf = &routers[from.index()];
    let rt = &routers[to.index()];
    debug_assert!(
        !rf.next_transfer_draws_rng(),
        "shared scans never draw RNG (scan_is_shared contract)"
    );
    let key = direction_key(from, to, states, &**rf, &**rt);
    if offers.is_silent(side, &key) {
        return DirPlan::Silent(key);
    }
    match rf.plan_transfer(
        &states[from.index()],
        &states[to.index()],
        &**rt,
        &mut offers.view(side),
        now,
    ) {
        Some(id) => DirPlan::Send(id),
        None => DirPlan::Silent(key),
    }
}

/// Commit one planned direction; true if a transfer started.
#[allow(clippy::too_many_arguments)]
fn commit_planned(
    from: NodeId,
    to: NodeId,
    side: usize,
    plan: DirPlan,
    offers: &mut ContactOffers,
    states: &[NodeState],
    links: &mut LinkTable,
    pending_wakes: &mut Vec<(SimTime, NodeId, NodeId)>,
    report: &mut SimReport,
    now: SimTime,
) -> bool {
    match plan {
        DirPlan::Send(id) => {
            start_planned_transfer(
                from,
                to,
                id,
                offers,
                states,
                links,
                pending_wakes,
                report,
                now,
            );
            true
        }
        DirPlan::Silent(key) => {
            offers.set_silent(side, key);
            false
        }
        DirPlan::NotScanned => {
            unreachable!("second direction is scanned whenever the first does not send")
        }
    }
}

/// Commit one deferred direction by running the full serial
/// `try_start_transfer` logic (silence memo, `next_transfer` with this
/// node's RNG lane) at its canonical position in the round.
#[allow(clippy::too_many_arguments)]
fn commit_deferred(
    from: NodeId,
    to: NodeId,
    side: usize,
    offers: &mut ContactOffers,
    states: &[NodeState],
    routers: &mut [Box<dyn Router>],
    node_rngs: &mut [SimRng],
    links: &mut LinkTable,
    pending_wakes: &mut Vec<(SimTime, NodeId, NodeId)>,
    report: &mut SimReport,
    now: SimTime,
) -> bool {
    let (rf, rt) = pair_mut(routers, from.index(), to.index());
    let silence_key = direction_key(from, to, states, &**rf, &**rt);
    let cacheable = !rf.next_transfer_draws_rng();
    if cacheable && offers.is_silent(side, &silence_key) {
        return false;
    }
    let intent = rf.next_transfer(
        &states[from.index()],
        &states[to.index()],
        &**rt,
        &mut offers.view(side),
        now,
        &mut node_rngs[from.index()],
    );
    match intent {
        Some(id) => {
            start_planned_transfer(
                from,
                to,
                id,
                offers,
                states,
                links,
                pending_wakes,
                report,
                now,
            );
            true
        }
        None => {
            if cacheable {
                offers.set_silent(side, silence_key);
            }
            false
        }
    }
}

/// Start a transfer chosen by the round: record the offer, put the bytes
/// on the wire, and queue the exact byte-drain wake-up (held back until
/// the re-arm decision, which drops wakes another event already covers).
#[allow(clippy::too_many_arguments)]
fn start_planned_transfer(
    from: NodeId,
    to: NodeId,
    id: MessageId,
    offers: &mut ContactOffers,
    states: &[NodeState],
    links: &mut LinkTable,
    pending_wakes: &mut Vec<(SimTime, NodeId, NodeId)>,
    report: &mut SimReport,
    now: SimTime,
) {
    let msg = states[from.index()]
        .buffer
        .get(id)
        .expect("router offered a message it does not hold");
    let handle = states[from.index()]
        .buffer
        .handle_of(id)
        .expect("stored message has a handle");
    offers.record(id, handle);
    let completes = links.start_transfer(from, to, msg, now);
    pending_wakes.push((completes, from, to));
    report.messages.transfers_started += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MapSpec, NodeGroup, Scenario, TrafficSpec};
    use vdtn_bundle::PolicyCombo;
    use vdtn_geo::GridMapGen;
    use vdtn_mobility::SpmbConfig;
    use vdtn_net::{DetectorBackend, RadioInterface};
    use vdtn_routing::RouterKind;

    /// Small but busy scenario: 8 vehicles on a 3×3 grid, fast contacts.
    fn small(router: RouterKind, policy: PolicyCombo, seed: u64) -> Scenario {
        Scenario {
            name: "engine-test".into(),
            seed,
            duration_secs: 1_800.0,
            tick_secs: 1.0,
            map: MapSpec::Grid(GridMapGen {
                cols: 3,
                rows: 3,
                spacing: 120.0,
            }),
            groups: vec![NodeGroup {
                name: "vehicles".into(),
                count: 8,
                buffer_bytes: 20_000_000,
                mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig {
                    wait_lo: 5.0,
                    wait_hi: 20.0,
                    ..SpmbConfig::default()
                }),
                is_relay: false,
            }],
            radio: RadioInterface::paper_80211b(),
            detector: DetectorBackend::Grid,
            traffic: TrafficSpec::paper(SimDuration::from_mins(30)),
            router,
            policy,
            sample_period_secs: 60.0,
        }
    }

    #[test]
    fn epidemic_delivers_messages() {
        let report = World::build(&small(RouterKind::Epidemic, PolicyCombo::FIFO_FIFO, 1)).run();
        assert!(report.messages.created > 50, "{}", report.summary());
        assert!(
            report.messages.delivered_unique > 0,
            "no deliveries: {}",
            report.summary()
        );
        assert!(report.contacts > 0);
        assert!(report.messages.transfers_started >= report.messages.relayed);
        assert!(report.delivery_probability() <= 1.0);
        assert!(!report.buffer_occupancy.is_empty());
    }

    #[test]
    fn deterministic_same_seed() {
        let a = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 7)).run();
        let b = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 7)).run();
        assert_eq!(a.messages.created, b.messages.created);
        assert_eq!(a.messages.delivered_unique, b.messages.delivered_unique);
        assert_eq!(a.messages.relayed, b.messages.relayed);
        assert_eq!(a.messages.transfers_started, b.messages.transfers_started);
        assert_eq!(a.contacts, b.contacts);
        assert!((a.avg_delay_mins() - b.avg_delay_mins()).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 1)).run();
        let b = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 2)).run();
        // Extremely unlikely to coincide exactly in all of these.
        assert!(
            a.messages.delivered_unique != b.messages.delivered_unique
                || a.messages.relayed != b.messages.relayed
                || a.contacts != b.contacts
        );
    }

    #[test]
    fn every_protocol_runs_clean() {
        use vdtn_routing::{MaxPropConfig, ProphetConfig};
        let kinds = [
            RouterKind::Epidemic,
            RouterKind::paper_snw(),
            RouterKind::Prophet(ProphetConfig::default()),
            RouterKind::MaxProp(MaxPropConfig::default()),
            RouterKind::DirectDelivery,
            RouterKind::FirstContact,
        ];
        for kind in kinds {
            let report = World::build(&small(kind.clone(), PolicyCombo::LIFETIME, 3)).run();
            assert!(report.messages.created > 0, "{kind:?}");
            // Conservation: every unique delivery implies a completed
            // transfer to the destination.
            assert!(
                report.messages.transfers_started
                    >= report.messages.delivered_unique + report.messages.relayed,
                "{kind:?}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn epidemic_beats_direct_delivery() {
        // Flooding must dominate the no-replication baseline: in this small,
        // well-connected scenario both deliver nearly everything, so the
        // decisive advantage is delay; delivery count must at least be
        // competitive (replication can never *lose* deliveries beyond noise).
        let epi = World::build(&small(RouterKind::Epidemic, PolicyCombo::LIFETIME, 11)).run();
        let dd = World::build(&small(
            RouterKind::DirectDelivery,
            PolicyCombo::LIFETIME,
            11,
        ))
        .run();
        assert!(
            epi.messages.delivered_unique as f64 >= 0.9 * dd.messages.delivered_unique as f64,
            "epidemic {} ≪ direct {}",
            epi.messages.delivered_unique,
            dd.messages.delivered_unique
        );
        assert!(
            epi.avg_delay_mins() < dd.avg_delay_mins(),
            "epidemic delay {:.1}m not better than direct {:.1}m",
            epi.avg_delay_mins(),
            dd.avg_delay_mins()
        );
    }

    #[test]
    fn step_granularity_and_clock() {
        let mut w = World::build(&small(RouterKind::Epidemic, PolicyCombo::FIFO_FIFO, 5));
        assert_eq!(w.now(), SimTime::ZERO);
        assert_eq!(w.mode(), EngineMode::EventDriven);
        w.step();
        assert_eq!(w.now(), SimTime::from_secs_f64(1.0));
        assert_eq!(w.node_count(), 8);
        // Positions stay on the 240×240 m map.
        for i in 0..w.node_count() {
            let p = w.node_position(NodeId(i as u32));
            assert!((0.0..=240.0).contains(&p.x) && (0.0..=240.0).contains(&p.y));
        }
    }

    /// Canonical serialisation with the wall clock zeroed: equal strings ⟺
    /// bit-identical reports.
    fn canon(mut r: SimReport) -> String {
        r.wall_secs = 0.0;
        serde_json::to_string(&r).expect("report serialises")
    }

    #[test]
    fn event_mode_is_bit_identical_to_ticked() {
        for seed in [1, 7, 23] {
            let scenario = small(RouterKind::Epidemic, PolicyCombo::LIFETIME, seed);
            let ticked = World::build_with_mode(&scenario, EngineMode::Ticked).run();
            let event = World::build_with_mode(&scenario, EngineMode::EventDriven).run();
            assert_eq!(canon(ticked), canon(event), "seed {seed}");
        }
    }

    #[test]
    fn parallel_mode_is_bit_identical_at_every_pool_size() {
        for seed in [1, 23] {
            let scenario = small(RouterKind::Epidemic, PolicyCombo::LIFETIME, seed);
            let reference = canon(World::build_with_mode(&scenario, EngineMode::Ticked).run());
            for threads in [1, 2, 4] {
                let par = World::build_parallel_with_threads(
                    &scenario,
                    RoutingBackend::default(),
                    threads,
                )
                .run();
                assert_eq!(reference, canon(par), "seed {seed}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_mode_handles_random_scheduling_deferred_pairs() {
        // Random scheduling draws RNG per round, so every pair defers to
        // the serial commit — the parallel engine must still match.
        let scenario = small(RouterKind::Epidemic, PolicyCombo::RANDOM_FIFO, 9);
        let reference = canon(World::build_with_mode(&scenario, EngineMode::EventDriven).run());
        let par = World::build_parallel_with_threads(&scenario, RoutingBackend::default(), 2).run();
        assert_eq!(reference, canon(par));
    }

    #[test]
    fn event_mode_matches_ticked_stepwise() {
        // Stronger than end-state equality: clocks, positions and buffer
        // states agree after every single tick.
        let scenario = small(RouterKind::paper_snw(), PolicyCombo::FIFO_FIFO, 13);
        let mut ticked = World::build_with_mode(&scenario, EngineMode::Ticked);
        let mut event = World::build_with_mode(&scenario, EngineMode::EventDriven);
        for tick in 0..600 {
            ticked.step();
            event.step();
            assert_eq!(ticked.now(), event.now());
            for i in 0..ticked.node_count() {
                let id = NodeId(i as u32);
                assert_eq!(
                    ticked.node_position(id),
                    event.node_position(id),
                    "tick {tick}, node {i}: positions diverged"
                );
                assert_eq!(
                    ticked.node_state(id).buffer.used(),
                    event.node_state(id).buffer.used(),
                    "tick {tick}, node {i}: buffers diverged"
                );
            }
        }
    }

    #[test]
    fn pair_mut_splits_correctly() {
        let mut v = vec![1, 2, 3, 4];
        {
            let (a, b) = pair_mut(&mut v, 0, 3);
            std::mem::swap(a, b);
        }
        assert_eq!(v, vec![4, 2, 3, 1]);
        {
            let (a, b) = pair_mut(&mut v, 2, 1);
            *a += 10;
            *b += 100;
        }
        assert_eq!(v, vec![4, 102, 13, 1]);
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn pair_mut_rejects_same_index() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }
}

//! `run_scenario` — execute a scenario description from JSON.
//!
//! ```text
//! run_scenario SCENARIO.json [--report REPORT.json] [--csv] [--oracle]
//! run_scenario --sweep MANIFEST.json [--journal J.jsonl] [--resume]
//!              [--threads N] [--out POINTS.json]
//! ```
//!
//! Reads a [`vdtn::Scenario`] (the same structure `serde_json` serialises),
//! runs it, prints the one-line summary, optionally writes the full report
//! as JSON, a CSV row, and the omniscient-routing oracle bound.
//!
//! `--sweep` is the batch path: a [`vdtn::SweepManifest`] is expanded into
//! its canonical run list and executed by the sweep orchestrator —
//! work-stealing dispatch, streaming per-cell aggregation, and (with
//! `--journal`) an fsync-per-chunk resume journal so a killed sweep
//! continues with `--resume` instead of restarting. Aggregate output is
//! bit-identical at any `--threads` value and across kill/resume.
//!
//! Generate templates to start from:
//!
//! ```text
//! run_scenario --template        > my_scenario.json
//! run_scenario --sweep-template  > my_sweep.json
//! ```

use vdtn::orchestrator::{run_manifest, SweepManifest, SweepOptions};
use vdtn::presets::{paper_scenario, PaperProtocol, PAPER_TTLS_MIN};
use vdtn::{oracle_summary, Scenario, World};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" {
        eprintln!("usage: run_scenario SCENARIO.json [--report OUT.json] [--csv] [--oracle]");
        eprintln!("       run_scenario --sweep MANIFEST.json [--journal J.jsonl] [--resume]");
        eprintln!("                    [--threads N] [--out POINTS.json]");
        eprintln!("       run_scenario --template        # print a scenario template");
        eprintln!("       run_scenario --sweep-template  # print a sweep manifest template");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    if args[0] == "--template" {
        let template = paper_scenario(PaperProtocol::EpidemicLifetime, 60, 1);
        println!(
            "{}",
            serde_json::to_string_pretty(&template).expect("template serialises")
        );
        return;
    }

    if args[0] == "--sweep-template" {
        let manifest = SweepManifest::paper(
            "example-sweep",
            &PaperProtocol::protocol_comparison(),
            &PAPER_TTLS_MIN,
            &[1, 2, 3],
        );
        println!(
            "{}",
            serde_json::to_string_pretty(&manifest).expect("manifest serialises")
        );
        return;
    }

    if args[0] == "--sweep" {
        run_sweep_manifest(&args);
        return;
    }

    let path = &args[0];
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
    let scenario: Scenario =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("invalid scenario JSON: {e}"));

    let want_oracle = args.iter().any(|a| a == "--oracle");
    let want_csv = args.iter().any(|a| a == "--csv");
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .map(|i| args.get(i + 1).expect("--report needs a path").clone());

    let world = World::build(&scenario);
    if want_oracle {
        let (report, log) = world.run_logged();
        println!("{}", report.summary());
        let oracle = oracle_summary(&log);
        println!(
            "oracle bound: {}/{} deliverable, mean optimal delay {:.1} min \
             (protocol achieved {}/{} at {:.1} min)",
            oracle.deliverable,
            oracle.total,
            oracle.mean_delay_mins,
            report.messages.delivered_unique,
            report.messages.created,
            report.avg_delay_mins(),
        );
        finish(&report, want_csv, report_path);
    } else {
        let report = world.run();
        println!("{}", report.summary());
        finish(&report, want_csv, report_path);
    }
}

/// The `--sweep` batch path: manifest in, aggregate points out.
fn run_sweep_manifest(args: &[String]) {
    let path = args.get(1).unwrap_or_else(|| {
        eprintln!("--sweep needs a manifest path");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read manifest {path}: {e}"));
    let manifest: SweepManifest =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("invalid manifest JSON: {e}"));

    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        })
    };
    let opts = SweepOptions {
        threads: flag_value("--threads")
            .map(|v| v.parse().expect("--threads needs a number"))
            .unwrap_or(0),
        chunk_size: 0,
        journal: flag_value("--journal").map(std::path::PathBuf::from),
        resume: args.iter().any(|a| a == "--resume"),
    };
    let out_path = flag_value("--out");

    let outcome = match run_manifest(&manifest, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep `{}`: {} runs ({} executed, {} replayed) over {} cells, \
         {} chunks on {} threads, {:.1} s wall",
        manifest.name,
        outcome.runs_total,
        outcome.runs_executed,
        outcome.runs_replayed,
        outcome.points.len(),
        outcome.chunks,
        outcome.threads,
        outcome.wall_secs,
    );
    for p in &outcome.points {
        println!("{}", p.table_row());
    }
    if let Some(path) = out_path {
        // Aggregate file holds only the points: deterministic content,
        // byte-identical across thread counts and kill/resume.
        let json = serde_json::to_string_pretty(&outcome.points).expect("points serialise");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("aggregate points written to {path}");
    }
}

fn finish(report: &vdtn::SimReport, want_csv: bool, report_path: Option<String>) {
    if want_csv {
        println!("{}", vdtn::report::csv_header());
        println!("{}", report.csv_row());
    }
    if let Some(path) = report_path {
        let json = serde_json::to_string_pretty(report).expect("report serialises");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("report written to {path}");
    }
}

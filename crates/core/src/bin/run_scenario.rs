//! `run_scenario` — execute a scenario description from JSON.
//!
//! ```text
//! run_scenario SCENARIO.json [--report REPORT.json] [--csv] [--oracle]
//! ```
//!
//! Reads a [`vdtn::Scenario`] (the same structure `serde_json` serialises),
//! runs it, prints the one-line summary, optionally writes the full report
//! as JSON, a CSV row, and the omniscient-routing oracle bound.
//!
//! Generate a template to start from:
//!
//! ```text
//! run_scenario --template > my_scenario.json
//! ```

use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::{oracle_summary, Scenario, World};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" {
        eprintln!("usage: run_scenario SCENARIO.json [--report OUT.json] [--csv] [--oracle]");
        eprintln!("       run_scenario --template   # print a scenario template to stdout");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    if args[0] == "--template" {
        let template = paper_scenario(PaperProtocol::EpidemicLifetime, 60, 1);
        println!(
            "{}",
            serde_json::to_string_pretty(&template).expect("template serialises")
        );
        return;
    }

    let path = &args[0];
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
    let scenario: Scenario =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("invalid scenario JSON: {e}"));

    let want_oracle = args.iter().any(|a| a == "--oracle");
    let want_csv = args.iter().any(|a| a == "--csv");
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .map(|i| args.get(i + 1).expect("--report needs a path").clone());

    let world = World::build(&scenario);
    if want_oracle {
        let (report, log) = world.run_logged();
        println!("{}", report.summary());
        let oracle = oracle_summary(&log);
        println!(
            "oracle bound: {}/{} deliverable, mean optimal delay {:.1} min \
             (protocol achieved {}/{} at {:.1} min)",
            oracle.deliverable,
            oracle.total,
            oracle.mean_delay_mins,
            report.messages.delivered_unique,
            report.messages.created,
            report.avg_delay_mins(),
        );
        finish(&report, want_csv, report_path);
    } else {
        let report = world.run();
        println!("{}", report.summary());
        finish(&report, want_csv, report_path);
    }
}

fn finish(report: &vdtn::SimReport, want_csv: bool, report_path: Option<String>) {
    if want_csv {
        println!("{}", vdtn::report::csv_header());
        println!("{}", report.csv_row());
    }
    if let Some(path) = report_path {
        let json = serde_json::to_string_pretty(report).expect("report serialises");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("report written to {path}");
    }
}

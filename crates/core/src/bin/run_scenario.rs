//! `run_scenario` — execute a scenario description from JSON.
//!
//! ```text
//! run_scenario SCENARIO.json [--report REPORT.json] [--csv] [--oracle]
//!              [--engine ticked|event|parallel] [--threads N]
//!              [--hash-stream] [--hash-every SECS]
//!              [--save-at SECS --snapshot FILE.snap]
//! run_scenario --restore FILE.snap [--engine MODE] [--threads N] [...]
//! run_scenario --sweep MANIFEST.json [--journal J.jsonl] [--resume]
//!              [--threads N] [--out POINTS.json]
//! ```
//!
//! Reads a [`vdtn::Scenario`] (the same structure `serde_json` serialises),
//! runs it, prints the one-line summary, optionally writes the full report
//! as JSON, a CSV row, and the omniscient-routing oracle bound.
//!
//! `--hash-stream` emits one `<now_ms> <state_hash_hex>` line per
//! `--hash-every` seconds (default 60) of simulated time to stdout — and
//! *only* those lines, the summary moves to stderr — so CI can `cmp` the
//! streams of two runs directly. Because the hash is identical by
//! construction across engine modes and thread counts, any two invocations
//! of the same scenario must produce bytewise-equal streams; the drift
//! matrix in CI pins exactly that across the full mode × thread grid.
//!
//! `--save-at T --snapshot F` checkpoints the world at simulated time `T`
//! into `F` and then *continues to the end* (the snapshot is a side effect,
//! not an exit). `--restore F` rebuilds the world from `F` — under any
//! `--engine`/`--threads`, not just the capturing one — and runs the
//! remainder; the final report is bit-identical to the uninterrupted run.
//!
//! `--sweep` is the batch path: a [`vdtn::SweepManifest`] is expanded into
//! its canonical run list and executed by the sweep orchestrator —
//! work-stealing dispatch, streaming per-cell aggregation, and (with
//! `--journal`) an fsync-per-chunk resume journal so a killed sweep
//! continues with `--resume` instead of restarting. Aggregate output is
//! bit-identical at any `--threads` value and across kill/resume.
//!
//! Generate templates to start from:
//!
//! ```text
//! run_scenario --template        > my_scenario.json
//! run_scenario --sweep-template  > my_sweep.json
//! ```

use vdtn::orchestrator::{run_manifest, SweepManifest, SweepOptions};
use vdtn::presets::{paper_scenario, PaperProtocol, PAPER_TTLS_MIN};
use vdtn::{load_snapshot, oracle_summary, save_snapshot, EngineMode, Scenario, World};
use vdtn_routing::RoutingBackend;
use vdtn_sim_core::SimTime;

fn usage(code: i32) -> ! {
    eprintln!("usage: run_scenario SCENARIO.json [--report OUT.json] [--csv] [--oracle]");
    eprintln!("                    [--engine ticked|event|parallel] [--threads N]");
    eprintln!("                    [--hash-stream] [--hash-every SECS]");
    eprintln!("                    [--save-at SECS --snapshot FILE.snap]");
    eprintln!("       run_scenario --restore FILE.snap [--engine MODE] [--threads N]");
    eprintln!("       run_scenario --sweep MANIFEST.json [--journal J.jsonl] [--resume]");
    eprintln!("                    [--threads N] [--out POINTS.json]");
    eprintln!("       run_scenario --template        # print a scenario template");
    eprintln!("       run_scenario --sweep-template  # print a sweep manifest template");
    std::process::exit(code);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage(2);
    }
    if args[0] == "--help" {
        usage(0);
    }

    if args[0] == "--template" {
        let template = paper_scenario(PaperProtocol::EpidemicLifetime, 60, 1);
        println!(
            "{}",
            serde_json::to_string_pretty(&template).expect("template serialises")
        );
        return;
    }

    if args[0] == "--sweep-template" {
        let manifest = SweepManifest::paper(
            "example-sweep",
            &PaperProtocol::protocol_comparison(),
            &PAPER_TTLS_MIN,
            &[1, 2, 3],
        );
        println!(
            "{}",
            serde_json::to_string_pretty(&manifest).expect("manifest serialises")
        );
        return;
    }

    if args[0] == "--sweep" {
        run_sweep_manifest(&args);
        return;
    }

    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        })
    };
    let engine = match flag_value("--engine").as_deref() {
        None => EngineMode::default(),
        Some("ticked") => EngineMode::Ticked,
        Some("event") => EngineMode::EventDriven,
        Some("parallel") => EngineMode::Parallel,
        Some(other) => {
            eprintln!("unknown --engine `{other}` (want ticked|event|parallel)");
            std::process::exit(2);
        }
    };
    let threads: Option<usize> =
        flag_value("--threads").map(|v| v.parse().expect("--threads needs a number"));
    let want_oracle = args.iter().any(|a| a == "--oracle");
    let want_csv = args.iter().any(|a| a == "--csv");
    let want_hash_stream = args.iter().any(|a| a == "--hash-stream");
    let hash_every = flag_value("--hash-every")
        .map(|v| v.parse::<f64>().expect("--hash-every needs seconds"))
        .unwrap_or(60.0);
    assert!(hash_every > 0.0, "--hash-every must be positive");
    let save_at =
        flag_value("--save-at").map(|v| v.parse::<f64>().expect("--save-at needs seconds"));
    let snapshot_path = flag_value("--snapshot");
    assert_eq!(
        save_at.is_some(),
        snapshot_path.is_some(),
        "--save-at and --snapshot must be given together"
    );
    let report_path = flag_value("--report");

    // Materialise the world: fresh from a scenario file, or resumed from a
    // snapshot. Either way the remainder of the pipeline is identical.
    let (scenario, mut world) = if let Some(snap_path) = flag_value("--restore") {
        let snap = load_snapshot(snap_path.as_ref())
            .unwrap_or_else(|e| panic!("cannot restore snapshot {snap_path}: {e}"));
        let world = World::restore(&snap, engine, RoutingBackend::default(), threads);
        eprintln!(
            "restored `{}` at t={:.0}s (state hash {:016x})",
            snap.scenario.name,
            snap.now.as_secs_f64(),
            snap.state_hash,
        );
        (snap.scenario, world)
    } else {
        let path = &args[0];
        if path.starts_with("--") {
            usage(2);
        }
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read scenario {path}: {e}"));
        let scenario: Scenario =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("invalid scenario JSON: {e}"));
        let world = match threads {
            Some(n) if engine == EngineMode::Parallel => {
                World::build_parallel_with_threads(&scenario, RoutingBackend::default(), n)
            }
            _ => World::build_with_options(&scenario, engine, RoutingBackend::default()),
        };
        (scenario, world)
    };

    if want_oracle {
        if want_hash_stream || save_at.is_some() {
            eprintln!("--oracle cannot combine with --hash-stream or --save-at");
            std::process::exit(2);
        }
        let (report, log) = world.run_logged();
        println!("{}", report.summary());
        let oracle = oracle_summary(&log);
        println!(
            "oracle bound: {}/{} deliverable, mean optimal delay {:.1} min \
             (protocol achieved {}/{} at {:.1} min)",
            oracle.deliverable,
            oracle.total,
            oracle.mean_delay_mins,
            report.messages.delivered_unique,
            report.messages.created,
            report.avg_delay_mins(),
        );
        finish(&report, want_csv, report_path);
        return;
    }

    // Checkpoint side effect: drive to the save point, capture, continue.
    if let (Some(at), Some(path)) = (save_at, &snapshot_path) {
        let at = SimTime::from_secs_f64(at);
        if at < world.now() {
            eprintln!(
                "--save-at {:.0}s is before the world's clock ({:.0}s)",
                at.as_secs_f64(),
                world.now().as_secs_f64()
            );
            std::process::exit(2);
        }
        world.run_until(at);
        let snap = world.snapshot(&scenario);
        save_snapshot(path.as_ref(), &snap)
            .unwrap_or_else(|e| panic!("cannot write snapshot {path}: {e}"));
        eprintln!(
            "snapshot at t={:.0}s written to {path} (state hash {:016x})",
            snap.now.as_secs_f64(),
            snap.state_hash,
        );
    }

    let report = if want_hash_stream {
        // Hashes only on stdout (one `<now_ms> <hash_hex>` line per period)
        // so two streams can be `cmp`'d; everything human goes to stderr.
        let end = SimTime::from_secs_f64(scenario.duration_secs);
        let period = vdtn::SimDuration::from_secs_f64(hash_every);
        let mut next = world.now() + period;
        while next < end {
            world.run_until(next);
            println!("{} {:016x}", world.now().as_millis(), world.state_hash());
            next += period;
        }
        world.run_until(end);
        println!("{} {:016x}", world.now().as_millis(), world.state_hash());
        let report = world.run();
        eprintln!("{}", report.summary());
        report
    } else {
        let report = world.run();
        println!("{}", report.summary());
        report
    };
    finish(&report, want_csv, report_path);
}

/// The `--sweep` batch path: manifest in, aggregate points out.
fn run_sweep_manifest(args: &[String]) {
    let path = args.get(1).unwrap_or_else(|| {
        eprintln!("--sweep needs a manifest path");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read manifest {path}: {e}"));
    let manifest: SweepManifest =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("invalid manifest JSON: {e}"));

    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        })
    };
    let opts = SweepOptions {
        threads: flag_value("--threads")
            .map(|v| v.parse().expect("--threads needs a number"))
            .unwrap_or(0),
        chunk_size: 0,
        journal: flag_value("--journal").map(std::path::PathBuf::from),
        resume: args.iter().any(|a| a == "--resume"),
        checkpoint_dir: flag_value("--checkpoint-dir").map(std::path::PathBuf::from),
        checkpoint_every_secs: flag_value("--checkpoint-every")
            .map(|v| v.parse().expect("--checkpoint-every needs seconds"))
            .unwrap_or(0.0),
    };
    if let Some(dir) = &opts.checkpoint_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create checkpoint dir: {e}"));
    }
    let out_path = flag_value("--out");

    let outcome = match run_manifest(&manifest, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweep `{}`: {} runs ({} executed, {} replayed) over {} cells, \
         {} chunks on {} threads, {:.1} s wall",
        manifest.name,
        outcome.runs_total,
        outcome.runs_executed,
        outcome.runs_replayed,
        outcome.points.len(),
        outcome.chunks,
        outcome.threads,
        outcome.wall_secs,
    );
    for p in &outcome.points {
        println!("{}", p.table_row());
    }
    if let Some(path) = out_path {
        // Aggregate file holds only the points: deterministic content,
        // byte-identical across thread counts and kill/resume.
        let json = serde_json::to_string_pretty(&outcome.points).expect("points serialise");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("aggregate points written to {path}");
    }
}

fn finish(report: &vdtn::SimReport, want_csv: bool, report_path: Option<String>) {
    if want_csv {
        println!("{}", vdtn::report::csv_header());
        println!("{}", report.csv_row());
    }
    if let Some(path) = report_path {
        let json = serde_json::to_string_pretty(report).expect("report serialises");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("report written to {path}");
    }
}

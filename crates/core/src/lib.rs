//! `vdtn` — the Vehicular Delay-Tolerant Network simulator.
//!
//! This is the top-level crate of the reproduction suite for *"Improvement
//! of Messages Delivery Time on Vehicular Delay-Tolerant Networks"* (Soares
//! et al., ICPP Workshops 2009). It composes the substrate crates into a
//! runnable simulator:
//!
//! * [`Scenario`] — a fully serialisable experiment description (map, node
//!   groups, radio, traffic, routing protocol, buffer policies, duration);
//! * [`World`] — the engine: movement → connectivity → transfers → routing
//!   round → TTL sweep on a hybrid event-driven scheduler that skips
//!   work-free ticks (bit-identical to the ticked reference, see
//!   [`EngineMode`]), with deterministic RNG lanes throughout;
//! * [`SimReport`] — every metric the paper reports (and more), derived
//!   from engine events;
//! * [`presets`] — the paper's Helsinki scenario parameterised by protocol,
//!   policy combination and TTL;
//! * [`sweep`] — a rayon-parallel runner for TTL sweeps and multi-seed
//!   averaging, which is how every figure is regenerated.
//!
//! # Quickstart
//!
//! ```
//! use vdtn::presets::{paper_scenario, PaperProtocol};
//! use vdtn::World;
//!
//! // Epidemic routing with the paper's winning Lifetime policies, 60-minute
//! // TTL, scaled down to a 30-minute run for the doctest.
//! let mut scenario = paper_scenario(
//!     PaperProtocol::EpidemicLifetime,
//!     60,   // TTL minutes
//!     42,   // seed
//! );
//! scenario.duration_secs = 1800.0;
//! let report = World::build(&scenario).run();
//! assert!(report.messages.created > 0);
//! ```

pub mod analysis;
pub mod engine;
pub mod logging;
pub mod orchestrator;
pub mod presets;
pub mod report;
pub mod scenario;
pub mod snapshot;
pub mod sweep;

pub use analysis::{oracle_delays, oracle_summary, MeetingModel, OracleSummary};
pub use engine::{EngineMode, EngineStats, World};
pub use logging::{ContactRecord, SimLog};
pub use orchestrator::{
    run_manifest, run_manifest_with, CellAccumulator, RunRecord, ScenarioBase, SweepManifest,
    SweepOptions, SweepOutcome,
};
pub use report::{DropCause, MessageStats, SimReport};
pub use scenario::{MapSpec, MobilitySpec, NodeGroup, RelayPlacement, Scenario};
pub use snapshot::{
    load_snapshot, save_snapshot, scenario_fingerprint, SnapshotHeader, WorldSnapshot,
};
pub use sweep::{average_reports, run_sweep, run_sweep_with_options, SweepError, SweepPoint};

// Convenience re-exports so downstream users need only `vdtn`.
pub use vdtn_bundle::{DropPolicy, PolicyCombo, SchedulingPolicy};
pub use vdtn_net::DetectorBackend;
pub use vdtn_routing::{MaxPropConfig, ProphetConfig, RouterKind, RoutingBackend};
pub use vdtn_sim_core::{NodeId, SimDuration, SimTime};

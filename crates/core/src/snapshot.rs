//! Checkpoint/restore: the world snapshot and its on-disk format.
//!
//! A [`WorldSnapshot`] captures everything a [`World`](crate::World) needs
//! to resume a run mid-flight and finish **bit-identically** to the
//! uninterrupted run: simulation clock, per-node buffers and delivered
//! sets, router protocol state, RNG stream positions, mover trajectories,
//! the traffic generator mid-stream, live links with their in-flight
//! transfers and per-contact offer state, and the contact trace. Caches —
//! silence memos, schedule cursors, candidate indexes, router digest
//! caches, the event queue — are deliberately *not* captured: they rebuild
//! conservatively at restore, degrading to rescans, never to wrong answers
//! (the same "events are markers, not obligations" discipline the engine
//! itself follows).
//!
//! Restoring is mode-agnostic: a snapshot taken under any
//! [`EngineMode`](crate::EngineMode) resumes under any other, at any thread
//! count, because the captured state is exactly the canonical state the
//! three modes keep bit-identical (`tests/engine_equivalence.rs`).
//!
//! # File format
//!
//! Two lines, the same discipline as the sweep journal
//! ([`crate::orchestrator::journal`]):
//!
//! 1. a JSON [`SnapshotHeader`] binding the file to a magic, a format
//!    version, the scenario fingerprint, the capture clock, the state hash
//!    at capture, and the byte length + FNV-1a digest of the payload line;
//! 2. the JSON payload (the [`WorldSnapshot`] itself).
//!
//! [`save_snapshot`] writes to a temp file, fsyncs, then renames into
//! place, so a crash never leaves a half-written file under the target
//! name; [`load_snapshot`] verifies the payload length and digest against
//! the header, so a torn or truncated payload is detected instead of
//! deserialised into a half-world.

use crate::report::SimReport;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use vdtn_bundle::{Message, MessageId};
use vdtn_mobility::MoverSnapshot;
use vdtn_routing::RouterSnapshot;
use vdtn_sim_core::statehash::fnv1a_64;
use vdtn_sim_core::{NodeId, SimRng, SimTime};

/// Snapshot file magic.
const MAGIC: &str = "vdtn-snapshot";
/// Snapshot format version.
const VERSION: u32 = 1;

/// One node's store-and-forward state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Buffered messages in reception order ([`vdtn_bundle::Buffer::iter`]
    /// order). Restore re-inserts them in this order into a fresh buffer,
    /// which reproduces the relative sequence ordering FIFO policies sort
    /// by.
    pub buffer: Vec<Message>,
    /// Delivered-message ids, sorted.
    pub delivered: Vec<MessageId>,
    /// The router's protocol state (delivery predictabilities, ack sets,
    /// …); caches excluded.
    pub router: RouterSnapshot,
}

/// An in-flight transfer on a live link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferSnapshot {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The copy on the wire (as captured at transfer start).
    pub msg: Message,
    /// Original start instant — replaying `start_transfer` with it
    /// reproduces the exact byte-drain completion time.
    pub started: SimTime,
}

/// One live link, in ordered-pair-key order (`a < b`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSnapshot {
    /// Lower endpoint of the pair key.
    pub a: NodeId,
    /// Higher endpoint of the pair key.
    pub b: NodeId,
    /// When the link came up.
    pub up_since: SimTime,
    /// Link rate, bytes per second.
    pub rate: f64,
    /// In-flight transfer, if the link is busy.
    pub transfer: Option<TransferSnapshot>,
    /// Message ids already offered during this contact (semantic dedup
    /// state; the offer caches rebuild cold).
    pub offered: Vec<MessageId>,
    /// Per-direction payload bytes sent (`[lower id, higher id]`).
    pub sent_bytes: [u64; 2],
}

/// Complete dynamic state of a [`World`](crate::World) between two ticks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldSnapshot {
    /// The scenario that built the world. Restore re-materialises the
    /// static side (map, node groups, radio) from it, then overwrites the
    /// dynamic state with the fields below.
    pub scenario: Scenario,
    /// Simulation clock at capture (a tick boundary).
    pub now: SimTime,
    /// Tick counter at capture (drives routing-initiative parity).
    pub tick_index: u64,
    /// Canonical state hash at capture ([`crate::World::state_hash`]).
    /// Restore recomputes and verifies it — a round trip that does not
    /// reproduce the hash is a bug, not a degradation.
    pub state_hash: u64,
    /// Per-node store-and-forward state, indexed by node id.
    pub nodes: Vec<NodeSnapshot>,
    /// Per-node movement-model state, indexed by node id.
    pub movers: Vec<MoverSnapshot>,
    /// Per-node policy RNG lanes, indexed by node id.
    pub node_rngs: Vec<SimRng>,
    /// Traffic generator RNG mid-stream.
    pub traffic_rng: SimRng,
    /// Next message creation time.
    pub traffic_next_time: SimTime,
    /// Next message id.
    pub traffic_next_id: u64,
    /// Live links in ordered-pair-key order.
    pub links: Vec<LinkSnapshot>,
    /// Contact-trace accumulators (the serde derive persists the Welford
    /// moments; the dynamic maps travel separately below).
    pub trace: vdtn_net::ContactTrace,
    /// Open contacts (pair → start), sorted by pair key.
    pub trace_open: Vec<((u32, u32), SimTime)>,
    /// Last contact end per pair, sorted by pair key.
    pub trace_last_end: Vec<((u32, u32), SimTime)>,
    /// Report accumulated so far (counters, Welford moments, samples).
    pub report: SimReport,
    /// Next sampling boundary.
    pub next_sample: SimTime,
}

/// First line of a snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// File magic, always `"vdtn-snapshot"`.
    pub snapshot: String,
    /// Format version.
    pub version: u32,
    /// FNV-1a fingerprint of the scenario's canonical JSON — restore
    /// tooling can reject a snapshot against the wrong scenario without
    /// parsing the payload.
    pub scenario_fnv: u64,
    /// Capture clock, milliseconds.
    pub now_ms: u64,
    /// Canonical state hash at capture.
    pub state_hash: u64,
    /// Byte length of the payload line (excluding the trailing newline).
    pub payload_len: u64,
    /// FNV-1a digest of the payload line — torn-write detection.
    pub payload_fnv: u64,
}

/// FNV-1a fingerprint of a scenario's canonical JSON serialisation.
pub fn scenario_fingerprint(scenario: &Scenario) -> u64 {
    let json = serde_json::to_string(scenario).expect("scenario serialises");
    fnv1a_64(json.as_bytes())
}

fn bad_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Write a snapshot atomically: temp file in the target's directory,
/// fsync, rename. A crash mid-write leaves at worst a stray `.tmp` file,
/// never a corrupt snapshot under the target name.
pub fn save_snapshot(path: &Path, snap: &WorldSnapshot) -> io::Result<()> {
    let payload = serde_json::to_string(snap).expect("snapshot serialises");
    let header = SnapshotHeader {
        snapshot: MAGIC.to_string(),
        version: VERSION,
        scenario_fnv: scenario_fingerprint(&snap.scenario),
        now_ms: snap.now.as_millis(),
        state_hash: snap.state_hash,
        payload_len: payload.len() as u64,
        payload_fnv: fnv1a_64(payload.as_bytes()),
    };
    let header_line = serde_json::to_string(&header).expect("header serialises");

    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(header_line.as_bytes())?;
        file.write_all(b"\n")?;
        file.write_all(payload.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read and verify a snapshot. Rejects foreign files (bad magic), future
/// format versions, and torn payloads (length or digest mismatch against
/// the header).
pub fn load_snapshot(path: &Path) -> io::Result<WorldSnapshot> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let (header_line, rest) = text
        .split_once('\n')
        .ok_or_else(|| bad_data("snapshot has no header line".into()))?;
    let header: SnapshotHeader = serde_json::from_str(header_line)
        .map_err(|e| bad_data(format!("unparseable snapshot header: {e}")))?;
    if header.snapshot != MAGIC {
        return Err(bad_data(format!(
            "bad snapshot magic `{}`",
            header.snapshot
        )));
    }
    if header.version != VERSION {
        return Err(bad_data(format!(
            "unsupported snapshot version {}",
            header.version
        )));
    }
    let payload = rest.strip_suffix('\n').unwrap_or(rest);
    if payload.len() as u64 != header.payload_len {
        return Err(bad_data(format!(
            "torn snapshot payload: {} bytes, header promises {}",
            payload.len(),
            header.payload_len
        )));
    }
    if fnv1a_64(payload.as_bytes()) != header.payload_fnv {
        return Err(bad_data("snapshot payload digest mismatch".into()));
    }
    let snap: WorldSnapshot = serde_json::from_str(payload)
        .map_err(|e| bad_data(format!("unparseable snapshot payload: {e}")))?;
    if scenario_fingerprint(&snap.scenario) != header.scenario_fnv {
        return Err(bad_data("snapshot scenario fingerprint mismatch".into()));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{paper_scenario, PaperProtocol};
    use crate::World;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vdtn-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_world() -> (Scenario, World) {
        let mut scenario = paper_scenario(PaperProtocol::EpidemicLifetime, 30, 5);
        scenario.duration_secs = 600.0;
        let world = World::build(&scenario);
        (scenario, world)
    }

    #[test]
    fn file_round_trip_preserves_state_hash() {
        let (scenario, mut world) = small_world();
        world.run_until(SimTime::from_secs_f64(300.0));
        let snap = world.snapshot(&scenario);
        let path = tmp("roundtrip.snap");
        save_snapshot(&path, &snap).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.state_hash, snap.state_hash);
        assert_eq!(loaded.now, snap.now);
        let restored = World::restore(&loaded, world.mode(), Default::default(), None);
        assert_eq!(restored.state_hash(), snap.state_hash);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_payload_is_rejected() {
        let (scenario, mut world) = small_world();
        world.run_until(SimTime::from_secs_f64(120.0));
        let snap = world.snapshot(&scenario);
        let path = tmp("torn.snap");
        save_snapshot(&path, &snap).unwrap();
        // Simulate a kill mid-write: drop the payload's tail.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - text.len() / 4]).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_byte_is_rejected() {
        let (scenario, mut world) = small_world();
        world.run_until(SimTime::from_secs_f64(120.0));
        let snap = world.snapshot(&scenario);
        let path = tmp("flip.snap");
        save_snapshot(&path, &snap).unwrap();
        // Flip one payload byte without changing the length.
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let i = header_end + 1 + (bytes.len() - header_end) / 2;
        bytes[i] = bytes[i].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let path = tmp("foreign.snap");
        std::fs::write(&path, "{\"snapshot\":\"other\",\"version\":1,\"scenario_fnv\":0,\"now_ms\":0,\"state_hash\":0,\"payload_len\":0,\"payload_fnv\":0}\n\n").unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::write(&path, "not json at all").unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

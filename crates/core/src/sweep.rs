//! Parallel parameter sweeps.
//!
//! Every figure in the paper is a sweep: protocols × TTLs, each cell
//! averaged over seeds. Runs are fully independent (deterministic per-seed
//! RNG lanes, no shared state), so the sweep is embarrassingly parallel —
//! [`run_sweep`] fans the scenario list across a rayon thread pool and
//! collects reports in input order.
//!
//! This module holds the small, report-level surface (run a scenario list,
//! average one cell); the batch experiment system built on top of it —
//! manifests, work-stealing chunks, streaming accumulators, the resume
//! journal — lives in [`crate::orchestrator`].

use crate::engine::{EngineMode, World};
use crate::orchestrator::CellAccumulator;
use crate::report::SimReport;
use crate::scenario::Scenario;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use vdtn_routing::RoutingBackend;

/// Typed failure of a sweep: bad cell input, a malformed manifest, or a
/// journal that cannot be trusted.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A cell was averaged over zero reports.
    EmptyCell {
        /// Cell label.
        label: String,
    },
    /// One cell mixed reports with different TTLs.
    MixedTtl {
        /// Cell label.
        label: String,
        /// TTL of the first report, minutes.
        expected: f64,
        /// Offending TTL, minutes.
        got: f64,
    },
    /// A required manifest axis was empty.
    EmptyAxis {
        /// Axis name.
        axis: &'static str,
    },
    /// The manifest was structurally invalid.
    Manifest {
        /// What was wrong.
        detail: String,
    },
    /// The resume journal was unusable (wrong magic, version, or it was
    /// written by a different manifest).
    Journal {
        /// What was wrong.
        detail: String,
    },
    /// An I/O failure while reading or writing the journal.
    Io {
        /// Rendered `std::io::Error`.
        detail: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyCell { label } => {
                write!(f, "cell `{label}`: cannot average zero reports")
            }
            SweepError::MixedTtl {
                label,
                expected,
                got,
            } => write!(
                f,
                "cell `{label}`: mixed TTLs ({expected} min vs {got} min)"
            ),
            SweepError::EmptyAxis { axis } => write!(f, "manifest axis `{axis}` is empty"),
            SweepError::Manifest { detail } => write!(f, "invalid manifest: {detail}"),
            SweepError::Journal { detail } => write!(f, "unusable journal: {detail}"),
            SweepError::Io { detail } => write!(f, "journal I/O failed: {detail}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io {
            detail: e.to_string(),
        }
    }
}

/// Run every scenario, in parallel, returning reports in input order.
/// Uses the default engine mode and routing backend; sweeps that want the
/// parallel engine or the rescan backend go through
/// [`run_sweep_with_options`].
pub fn run_sweep(scenarios: &[Scenario]) -> Vec<SimReport> {
    run_sweep_with_options(scenarios, EngineMode::default(), RoutingBackend::default())
}

/// [`run_sweep`] with an explicit engine mode and routing backend for every
/// run. Reports come back in input order and are bit-identical to serial
/// execution (each run is independent and internally deterministic).
pub fn run_sweep_with_options(
    scenarios: &[Scenario],
    mode: EngineMode,
    backend: RoutingBackend,
) -> Vec<SimReport> {
    scenarios
        .par_iter()
        .map(|s| World::build_with_options(s, mode, backend).run())
        .collect()
}

/// A figure data point: one (configuration, TTL) cell averaged over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Configuration label (figure legend entry).
    pub label: String,
    /// Message TTL in minutes (figure x-axis).
    pub ttl_mins: f64,
    /// Seeds averaged.
    pub seeds: usize,
    /// Mean delivery probability.
    pub delivery_probability: f64,
    /// Mean average-delay in minutes.
    pub avg_delay_mins: f64,
    /// Mean unique deliveries.
    pub delivered: f64,
    /// Mean created messages.
    pub created: f64,
    /// Mean overhead ratio.
    pub overhead: f64,
    /// Std-dev of delivery probability across seeds.
    pub delivery_probability_sd: f64,
    /// Std-dev of delay across seeds, minutes.
    pub avg_delay_sd: f64,
    /// Median of per-seed average delay, minutes (reservoir-sampled).
    pub delay_p50_mins: f64,
    /// 90th percentile of per-seed average delay, minutes.
    pub delay_p90_mins: f64,
    /// 95 % confidence half-width on the delivery probability mean.
    pub delivery_ci95: f64,
    /// 95 % confidence half-width on the mean delay, minutes.
    pub avg_delay_ci95: f64,
}

/// Average per-seed reports of one experimental cell into a [`SweepPoint`].
///
/// All reports must share the same TTL (they are one figure cell);
/// violations come back as a typed [`SweepError`] instead of a panic. The
/// math is the streaming [`CellAccumulator`], so this is bit-identical to
/// what the orchestrator produces for the same reports in the same order.
pub fn average_reports(label: &str, reports: &[SimReport]) -> Result<SweepPoint, SweepError> {
    let first = reports.first().ok_or_else(|| SweepError::EmptyCell {
        label: label.to_string(),
    })?;
    let ttl = first.ttl_mins;
    let mut acc = CellAccumulator::new(label, ttl);
    for r in reports {
        if (r.ttl_mins - ttl).abs() >= 1e-9 {
            return Err(SweepError::MixedTtl {
                label: label.to_string(),
                expected: ttl,
                got: r.ttl_mins,
            });
        }
        acc.push_report(r);
    }
    Ok(acc.finish())
}

impl SweepPoint {
    /// Row for the harness tables.
    pub fn table_row(&self) -> String {
        format!(
            "{:<40} ttl={:>3}m seeds={} P={:.3}±{:.3} delay={:.1}±{:.1}m delivered={:.0}/{:.0} overhead={:.1}",
            self.label,
            self.ttl_mins,
            self.seeds,
            self.delivery_probability,
            self.delivery_probability_sd,
            self.avg_delay_mins,
            self.avg_delay_sd,
            self.delivered,
            self.created,
            self.overhead,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{mini_scenario, PaperProtocol};

    #[test]
    fn sweep_preserves_order_and_determinism() {
        let scenarios: Vec<Scenario> = (0..4)
            .map(|seed| {
                let mut s = mini_scenario(PaperProtocol::EpidemicLifetime, 30, seed);
                s.duration_secs = 600.0;
                s
            })
            .collect();
        let parallel = run_sweep(&scenarios);
        let serial: Vec<SimReport> = scenarios.iter().map(|s| World::build(s).run()).collect();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.seed, s.seed);
            assert_eq!(p.messages.created, s.messages.created);
            assert_eq!(p.messages.delivered_unique, s.messages.delivered_unique);
            assert_eq!(p.messages.relayed, s.messages.relayed);
        }
    }

    #[test]
    fn sweep_with_options_matches_default_engine() {
        let scenarios: Vec<Scenario> = (0..2)
            .map(|seed| {
                let mut s = mini_scenario(PaperProtocol::EpidemicFifo, 30, seed);
                s.duration_secs = 600.0;
                s
            })
            .collect();
        let default = run_sweep(&scenarios);
        let ticked = run_sweep_with_options(&scenarios, EngineMode::Ticked, RoutingBackend::Rescan);
        for (d, t) in default.iter().zip(&ticked) {
            assert_eq!(d.messages.created, t.messages.created);
            assert_eq!(d.messages.delivered_unique, t.messages.delivered_unique);
            assert_eq!(d.messages.relayed, t.messages.relayed);
        }
    }

    #[test]
    fn averaging_means_and_sds() {
        let mut a = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        a.messages.created = 100;
        a.messages.delivered_unique = 50;
        a.messages.delay.push(600.0); // 10 min
        let mut b = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        b.messages.created = 100;
        b.messages.delivered_unique = 70;
        b.messages.delay.push(1200.0); // 20 min

        let p = average_reports("test", &[a, b]).unwrap();
        assert_eq!(p.seeds, 2);
        assert!((p.delivery_probability - 0.6).abs() < 1e-12);
        assert!((p.avg_delay_mins - 15.0).abs() < 1e-12);
        assert!(p.delivery_probability_sd > 0.0);
        assert!(p.delivery_ci95 > 0.0);
        // The reservoir holds both per-seed delays: p50 picks the midpoint
        // neighbour, p90 the larger one.
        assert!(p.delay_p90_mins >= p.delay_p50_mins);
        assert!(p.table_row().contains("ttl= 60m"));
    }

    #[test]
    fn averaging_rejects_mixed_ttls() {
        let a = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        let b = SimReport {
            ttl_mins: 90.0,
            ..SimReport::default()
        };
        let err = average_reports("bad", &[a, b]).unwrap_err();
        assert!(matches!(err, SweepError::MixedTtl { .. }));
        assert!(err.to_string().contains("mixed TTLs"));
    }

    #[test]
    fn averaging_rejects_empty() {
        let err = average_reports("empty", &[]).unwrap_err();
        assert!(matches!(err, SweepError::EmptyCell { .. }));
        assert!(err.to_string().contains("zero reports"));
    }
}

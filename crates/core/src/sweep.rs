//! Parallel parameter sweeps.
//!
//! Every figure in the paper is a sweep: protocols × TTLs, each cell
//! averaged over seeds. Runs are fully independent (deterministic per-seed
//! RNG lanes, no shared state), so the sweep is embarrassingly parallel —
//! [`run_sweep`] fans the scenario list across a rayon thread pool and
//! collects reports in input order.

use crate::engine::World;
use crate::report::SimReport;
use crate::scenario::Scenario;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Run every scenario, in parallel, returning reports in input order.
pub fn run_sweep(scenarios: &[Scenario]) -> Vec<SimReport> {
    scenarios
        .par_iter()
        .map(|s| World::build(s).run())
        .collect()
}

/// A figure data point: one (configuration, TTL) cell averaged over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Configuration label (figure legend entry).
    pub label: String,
    /// Message TTL in minutes (figure x-axis).
    pub ttl_mins: f64,
    /// Seeds averaged.
    pub seeds: usize,
    /// Mean delivery probability.
    pub delivery_probability: f64,
    /// Mean average-delay in minutes.
    pub avg_delay_mins: f64,
    /// Mean unique deliveries.
    pub delivered: f64,
    /// Mean created messages.
    pub created: f64,
    /// Mean overhead ratio.
    pub overhead: f64,
    /// Std-dev of delivery probability across seeds.
    pub delivery_probability_sd: f64,
    /// Std-dev of delay across seeds, minutes.
    pub avg_delay_sd: f64,
}

/// Average per-seed reports of one experimental cell into a [`SweepPoint`].
///
/// All reports must share the same TTL (they are one figure cell).
pub fn average_reports(label: &str, reports: &[SimReport]) -> SweepPoint {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let ttl = reports[0].ttl_mins;
    assert!(
        reports.iter().all(|r| (r.ttl_mins - ttl).abs() < 1e-9),
        "mixed TTLs in one cell"
    );
    let n = reports.len() as f64;
    let mean = |f: &dyn Fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    let sd = |f: &dyn Fn(&SimReport) -> f64, mu: f64| {
        if reports.len() < 2 {
            0.0
        } else {
            (reports.iter().map(|r| (f(r) - mu).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        }
    };
    let dp = mean(&|r: &SimReport| r.delivery_probability());
    let delay = mean(&|r: &SimReport| r.avg_delay_mins());
    SweepPoint {
        label: label.to_string(),
        ttl_mins: ttl,
        seeds: reports.len(),
        delivery_probability: dp,
        avg_delay_mins: delay,
        delivered: mean(&|r: &SimReport| r.messages.delivered_unique as f64),
        created: mean(&|r: &SimReport| r.messages.created as f64),
        overhead: mean(&|r: &SimReport| r.messages.overhead_ratio()),
        delivery_probability_sd: sd(&|r: &SimReport| r.delivery_probability(), dp),
        avg_delay_sd: sd(&|r: &SimReport| r.avg_delay_mins(), delay),
    }
}

impl SweepPoint {
    /// Row for the harness tables.
    pub fn table_row(&self) -> String {
        format!(
            "{:<40} ttl={:>3}m seeds={} P={:.3}±{:.3} delay={:.1}±{:.1}m delivered={:.0}/{:.0} overhead={:.1}",
            self.label,
            self.ttl_mins,
            self.seeds,
            self.delivery_probability,
            self.delivery_probability_sd,
            self.avg_delay_mins,
            self.avg_delay_sd,
            self.delivered,
            self.created,
            self.overhead,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{mini_scenario, PaperProtocol};

    #[test]
    fn sweep_preserves_order_and_determinism() {
        let scenarios: Vec<Scenario> = (0..4)
            .map(|seed| {
                let mut s = mini_scenario(PaperProtocol::EpidemicLifetime, 30, seed);
                s.duration_secs = 600.0;
                s
            })
            .collect();
        let parallel = run_sweep(&scenarios);
        let serial: Vec<SimReport> = scenarios.iter().map(|s| World::build(s).run()).collect();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.seed, s.seed);
            assert_eq!(p.messages.created, s.messages.created);
            assert_eq!(p.messages.delivered_unique, s.messages.delivered_unique);
            assert_eq!(p.messages.relayed, s.messages.relayed);
        }
    }

    #[test]
    fn averaging_means_and_sds() {
        let mut a = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        a.messages.created = 100;
        a.messages.delivered_unique = 50;
        a.messages.delay.push(600.0); // 10 min
        let mut b = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        b.messages.created = 100;
        b.messages.delivered_unique = 70;
        b.messages.delay.push(1200.0); // 20 min

        let p = average_reports("test", &[a, b]);
        assert_eq!(p.seeds, 2);
        assert!((p.delivery_probability - 0.6).abs() < 1e-12);
        assert!((p.avg_delay_mins - 15.0).abs() < 1e-12);
        assert!(p.delivery_probability_sd > 0.0);
        assert!(p.table_row().contains("ttl= 60m"));
    }

    #[test]
    #[should_panic(expected = "mixed TTLs")]
    fn averaging_rejects_mixed_ttls() {
        let a = SimReport {
            ttl_mins: 60.0,
            ..SimReport::default()
        };
        let b = SimReport {
            ttl_mins: 90.0,
            ..SimReport::default()
        };
        average_reports("bad", &[a, b]);
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn averaging_rejects_empty() {
        average_reports("empty", &[]);
    }
}

//! The paper's scenario, parameterised.
//!
//! Section III of the paper: a map-based model of part of Helsinki
//! (≈4500 m × 3400 m), 40 vehicles with 100 MB buffers moving at
//! 30–50 km/h with 5–15 min pauses, 5 stationary relay nodes with 500 MB
//! buffers at crossroads, 802.11b radios (6 Mbit/s, 30 m), messages of
//! 500 kB–2 MB created every 15–30 s between random vehicles, TTL swept over
//! {60, 90, 120, 150, 180} minutes, simulated for 12 hours.

use crate::scenario::{MapSpec, MobilitySpec, NodeGroup, RelayPlacement, Scenario, TrafficSpec};
use serde::{Deserialize, Serialize};
use vdtn_bundle::PolicyCombo;
use vdtn_geo::SyntheticCityGen;
use vdtn_mobility::SpmbConfig;
use vdtn_net::{DetectorBackend, RadioInterface};
use vdtn_routing::{MaxPropConfig, ProphetConfig, RouterKind};
use vdtn_sim_core::SimDuration;

/// The TTL sweep used by every figure, in minutes.
pub const PAPER_TTLS_MIN: [u64; 5] = [60, 90, 120, 150, 180];

/// Paper simulation horizon: 12 hours.
pub const PAPER_DURATION_SECS: f64 = 12.0 * 3600.0;

/// The protocol/policy configurations that appear in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperProtocol {
    /// Epidemic, FIFO–FIFO (Figures 4–5 baseline).
    EpidemicFifo,
    /// Epidemic, Random–FIFO.
    EpidemicRandom,
    /// Epidemic, Lifetime DESC–Lifetime ASC (Figures 4–5 winner; Figures 8–9).
    EpidemicLifetime,
    /// Spray and Wait (binary, L = 12), FIFO–FIFO (Figures 6–7 baseline).
    SnwFifo,
    /// Spray and Wait, Random–FIFO.
    SnwRandom,
    /// Spray and Wait, Lifetime DESC–Lifetime ASC (Figures 6–7 winner; 8–9).
    SnwLifetime,
    /// MaxProp with its native policies (Figures 8–9).
    MaxProp,
    /// PRoPHET (GRTRMax) with its native policies (Figures 8–9).
    Prophet,
}

impl PaperProtocol {
    /// Router + policy the configuration maps to.
    pub fn config(&self) -> (RouterKind, PolicyCombo) {
        match self {
            PaperProtocol::EpidemicFifo => (RouterKind::Epidemic, PolicyCombo::FIFO_FIFO),
            PaperProtocol::EpidemicRandom => (RouterKind::Epidemic, PolicyCombo::RANDOM_FIFO),
            PaperProtocol::EpidemicLifetime => (RouterKind::Epidemic, PolicyCombo::LIFETIME),
            PaperProtocol::SnwFifo => (RouterKind::paper_snw(), PolicyCombo::FIFO_FIFO),
            PaperProtocol::SnwRandom => (RouterKind::paper_snw(), PolicyCombo::RANDOM_FIFO),
            PaperProtocol::SnwLifetime => (RouterKind::paper_snw(), PolicyCombo::LIFETIME),
            PaperProtocol::MaxProp => (
                RouterKind::MaxProp(MaxPropConfig::default()),
                PolicyCombo::LIFETIME, // ignored: MaxProp has native policies
            ),
            PaperProtocol::Prophet => (
                RouterKind::Prophet(ProphetConfig::default()),
                PolicyCombo::LIFETIME, // ignored: PRoPHET has native policies
            ),
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            PaperProtocol::EpidemicFifo => "Epidemic FIFO-FIFO",
            PaperProtocol::EpidemicRandom => "Epidemic Random-FIFO",
            PaperProtocol::EpidemicLifetime => "Epidemic Lifetime DESC-Lifetime ASC",
            PaperProtocol::SnwFifo => "SnW FIFO-FIFO",
            PaperProtocol::SnwRandom => "SnW Random-FIFO",
            PaperProtocol::SnwLifetime => "SnW Lifetime DESC-Lifetime ASC",
            PaperProtocol::MaxProp => "MaxProp",
            PaperProtocol::Prophet => "PRoPHET",
        }
    }

    /// The three policy rows of Figures 4–5 (Epidemic).
    pub fn epidemic_policies() -> [PaperProtocol; 3] {
        [
            PaperProtocol::EpidemicFifo,
            PaperProtocol::EpidemicRandom,
            PaperProtocol::EpidemicLifetime,
        ]
    }

    /// The three policy rows of Figures 6–7 (Spray and Wait).
    pub fn snw_policies() -> [PaperProtocol; 3] {
        [
            PaperProtocol::SnwFifo,
            PaperProtocol::SnwRandom,
            PaperProtocol::SnwLifetime,
        ]
    }

    /// The four protocols of Figures 8–9.
    pub fn protocol_comparison() -> [PaperProtocol; 4] {
        [
            PaperProtocol::EpidemicLifetime,
            PaperProtocol::SnwLifetime,
            PaperProtocol::MaxProp,
            PaperProtocol::Prophet,
        ]
    }
}

/// Build the paper's full scenario for one (protocol, TTL, seed) cell.
pub fn paper_scenario(protocol: PaperProtocol, ttl_mins: u64, seed: u64) -> Scenario {
    let (router, policy) = protocol.config();
    Scenario {
        name: format!("paper/{}/ttl{}", protocol.label(), ttl_mins),
        seed,
        duration_secs: PAPER_DURATION_SECS,
        tick_secs: 1.0,
        map: MapSpec::Synthetic(SyntheticCityGen::default()),
        groups: vec![
            NodeGroup {
                name: "vehicles".into(),
                count: 40,
                buffer_bytes: 100_000_000, // 100 MB
                mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig::default()),
                is_relay: false,
            },
            NodeGroup {
                name: "relays".into(),
                count: 5,
                buffer_bytes: 500_000_000, // 500 MB
                mobility: MobilitySpec::Stationary(RelayPlacement::HighDegreeSpread),
                is_relay: true,
            },
        ],
        radio: RadioInterface::paper_80211b(),
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec::paper(SimDuration::from_mins(ttl_mins)),
        router,
        policy,
        sample_period_secs: 0.0,
    }
}

/// A scaled-down variant of the paper scenario for tests and CI: same
/// structure and contention regime, smaller map/population/duration so a run
/// completes in well under a second.
pub fn mini_scenario(protocol: PaperProtocol, ttl_mins: u64, seed: u64) -> Scenario {
    let mut s = paper_scenario(protocol, ttl_mins, seed);
    s.name = format!("mini/{}/ttl{}", protocol.label(), ttl_mins);
    s.duration_secs = 3_600.0;
    s.map = MapSpec::Synthetic(SyntheticCityGen {
        width: 1_500.0,
        height: 1_200.0,
        cols: 7,
        rows: 6,
        ..SyntheticCityGen::default()
    });
    s.groups[0].count = 12;
    // Shrink buffers so congestion (and hence policies) still matter.
    s.groups[0].buffer_bytes = 10_000_000;
    s.groups[1].count = 2;
    s.groups[1].buffer_bytes = 50_000_000;
    // Faster pauses keep the small fleet moving.
    if let MobilitySpec::ShortestPathMapBased(cfg) = &mut s.groups[0].mobility {
        cfg.wait_lo = 30.0;
        cfg.wait_hi = 120.0;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_section_iii() {
        let s = paper_scenario(PaperProtocol::EpidemicFifo, 60, 1);
        s.validate();
        assert_eq!(s.duration_secs, 43_200.0);
        assert_eq!(s.node_count(), 45);
        assert_eq!(s.groups[0].count, 40);
        assert_eq!(s.groups[0].buffer_bytes, 100_000_000);
        assert_eq!(s.groups[1].count, 5);
        assert_eq!(s.groups[1].buffer_bytes, 500_000_000);
        assert_eq!(s.radio.range, 30.0);
        assert_eq!(s.radio.rate, 750_000.0);
        assert_eq!(s.traffic.interval_lo, 15.0);
        assert_eq!(s.traffic.interval_hi, 30.0);
        assert_eq!(s.traffic.size_lo, 500_000);
        assert_eq!(s.traffic.size_hi, 2_000_000);
        assert_eq!(s.traffic.ttl, SimDuration::from_mins(60));
    }

    #[test]
    fn protocol_tables_cover_figures() {
        assert_eq!(PaperProtocol::epidemic_policies().len(), 3);
        assert_eq!(PaperProtocol::snw_policies().len(), 3);
        assert_eq!(PaperProtocol::protocol_comparison().len(), 4);
        assert_eq!(PAPER_TTLS_MIN, [60, 90, 120, 150, 180]);
    }

    #[test]
    fn snw_preset_is_binary_l12() {
        let (router, _) = PaperProtocol::SnwLifetime.config();
        assert_eq!(
            router,
            RouterKind::SprayAndWait {
                copies: 12,
                binary: true
            }
        );
    }

    #[test]
    fn native_policy_protocols_ignore_combo() {
        // Building MaxProp/PRoPHET with any combo yields the same router
        // behaviour; the preset records that the combo is ignored.
        let (r1, _) = PaperProtocol::MaxProp.config();
        assert_eq!(r1.label(), "MaxProp");
        let (r2, _) = PaperProtocol::Prophet.config();
        assert_eq!(r2.label(), "PRoPHET");
    }

    #[test]
    fn mini_scenario_validates_and_is_small() {
        let s = mini_scenario(PaperProtocol::EpidemicLifetime, 60, 3);
        s.validate();
        assert!(s.node_count() < 20);
        assert!(s.duration_secs <= 3_600.0);
    }
}

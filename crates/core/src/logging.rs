//! Full simulation logs: contact intervals and created messages.
//!
//! [`World::run_logged`](crate::World::run_logged) records every contact
//! interval and every created message alongside the normal report. The log
//! feeds the [`crate::analysis`] module — most importantly the offline
//! *delivery oracle*, which computes the earliest possible delivery time of
//! every message given the contact history (the lower bound an omniscient
//! router with infinite bandwidth would achieve). Comparing protocols
//! against the oracle separates "the contact structure made it impossible"
//! from "the protocol missed it".

use serde::{Deserialize, Serialize};
use vdtn_bundle::Message;
use vdtn_sim_core::{NodeId, SimTime};

/// One closed contact interval between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactRecord {
    /// One endpoint (lower id).
    pub a: NodeId,
    /// Other endpoint (higher id).
    pub b: NodeId,
    /// Link-up time.
    pub start: SimTime,
    /// Link-down time (or end of run for still-open contacts).
    pub end: SimTime,
}

impl ContactRecord {
    /// Contact duration.
    pub fn duration(&self) -> vdtn_sim_core::SimDuration {
        self.end.since(self.start)
    }
}

/// Everything needed to re-analyse a run offline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimLog {
    /// All contact intervals, in link-up order.
    pub contacts: Vec<ContactRecord>,
    /// All messages created during the run (source copies).
    pub messages: Vec<Message>,
    /// Number of nodes in the scenario.
    pub node_count: usize,
    /// Simulation horizon.
    pub horizon: SimTime,
}

/// Accumulates the log during a run (engine-internal).
#[derive(Debug, Default)]
pub(crate) struct SimLogBuilder {
    contacts: Vec<ContactRecord>,
    open: std::collections::HashMap<(u32, u32), SimTime>,
    messages: Vec<Message>,
}

impl SimLogBuilder {
    pub(crate) fn on_up(&mut self, a: NodeId, b: NodeId, now: SimTime) {
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.open.insert(key, now);
    }

    pub(crate) fn on_down(&mut self, a: NodeId, b: NodeId, now: SimTime) {
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(start) = self.open.remove(&key) {
            self.contacts.push(ContactRecord {
                a: NodeId(key.0),
                b: NodeId(key.1),
                start,
                end: now,
            });
        }
    }

    pub(crate) fn on_created(&mut self, msg: &Message) {
        self.messages.push(*msg);
    }

    pub(crate) fn finish(mut self, node_count: usize, horizon: SimTime) -> SimLog {
        // Close any still-open contacts at the horizon.
        let mut open: Vec<_> = self.open.drain().collect();
        open.sort_unstable_by_key(|&(k, _)| k);
        for (key, start) in open {
            self.contacts.push(ContactRecord {
                a: NodeId(key.0),
                b: NodeId(key.1),
                start,
                end: horizon,
            });
        }
        self.contacts.sort_by_key(|c| (c.start, c.a, c.b));
        SimLog {
            contacts: self.contacts,
            messages: self.messages,
            node_count,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn builder_records_closed_and_open_contacts() {
        let mut b = SimLogBuilder::default();
        b.on_up(NodeId(1), NodeId(0), t(10.0));
        b.on_down(NodeId(0), NodeId(1), t(25.0));
        b.on_up(NodeId(2), NodeId(3), t(30.0));
        let log = b.finish(4, t(100.0));
        assert_eq!(log.contacts.len(), 2);
        assert_eq!(log.contacts[0].a, NodeId(0));
        assert_eq!(log.contacts[0].duration().as_secs_f64(), 15.0);
        // Open contact closed at horizon.
        assert_eq!(log.contacts[1].end, t(100.0));
        assert_eq!(log.node_count, 4);
    }

    #[test]
    fn down_without_up_ignored() {
        let mut b = SimLogBuilder::default();
        b.on_down(NodeId(0), NodeId(1), t(5.0));
        let log = b.finish(2, t(10.0));
        assert!(log.contacts.is_empty());
    }

    #[test]
    fn log_serde_round_trip() {
        let mut b = SimLogBuilder::default();
        b.on_up(NodeId(0), NodeId(1), t(1.0));
        b.on_down(NodeId(0), NodeId(1), t(2.0));
        let log = b.finish(2, t(10.0));
        let json = serde_json::to_string(&log).unwrap();
        let back: SimLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.contacts.len(), 1);
    }
}

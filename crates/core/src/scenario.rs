//! Scenario descriptions: everything needed to reproduce a run.
//!
//! A [`Scenario`] is plain serialisable data (JSON via serde) so experiments
//! can be stored next to their results. `Scenario::validate` catches
//! configuration nonsense before the engine ever runs.

use serde::{Deserialize, Serialize};
use vdtn_bundle::PolicyCombo;
use vdtn_geo::{GridMapGen, Point, RoadGraph, SyntheticCityGen};
use vdtn_mobility::SpmbConfig;
use vdtn_net::{DetectorBackend, RadioInterface};
use vdtn_routing::RouterKind;
use vdtn_sim_core::{SimDuration, SimRng};

/// Which road map the scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MapSpec {
    /// Regular grid (tests, analytic scenarios).
    Grid(GridMapGen),
    /// Synthetic city — the Helsinki substitute (see DESIGN.md).
    Synthetic(SyntheticCityGen),
    /// Inline WKT text (drop-in for a real map extract).
    WktText(String),
}

impl MapSpec {
    /// Materialise the road graph (deterministic given `rng`).
    pub fn build(&self, rng: &mut SimRng) -> RoadGraph {
        match self {
            MapSpec::Grid(g) => g.generate(),
            MapSpec::Synthetic(s) => s.generate(rng),
            MapSpec::WktText(text) => vdtn_geo::wkt::parse_document_connected(text, 0.5)
                .expect("invalid WKT map in scenario"),
        }
    }
}

/// Where stationary relay nodes are placed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RelayPlacement {
    /// At the busiest crossroads: highest-degree vertices, greedily spread
    /// so no two relays are closer than a quarter of the map diagonal.
    /// This mirrors the paper's "placed at crossroads" (its Figure 3).
    HighDegreeSpread,
    /// Explicit coordinates (snapped to the nearest road vertex).
    Explicit(Vec<Point>),
}

/// How a node group moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MobilitySpec {
    /// The paper's vehicle model.
    ShortestPathMapBased(SpmbConfig),
    /// Stationary relays.
    Stationary(RelayPlacement),
}

/// A homogeneous group of nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeGroup {
    /// Group label for reports ("vehicles", "relays").
    pub name: String,
    /// Number of nodes in the group.
    pub count: usize,
    /// Per-node buffer capacity, bytes.
    pub buffer_bytes: u64,
    /// Movement model.
    pub mobility: MobilitySpec,
    /// True for relay infrastructure: such nodes never originate traffic
    /// and are excluded from the destination pool.
    pub is_relay: bool,
}

/// Traffic workload parameters (see `vdtn_bundle::TrafficConfig`; endpoints
/// are derived from the non-relay groups at build time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Minimum inter-creation interval, seconds.
    pub interval_lo: f64,
    /// Maximum inter-creation interval, seconds.
    pub interval_hi: f64,
    /// Minimum message size, bytes.
    pub size_lo: u64,
    /// Maximum message size, bytes.
    pub size_hi: u64,
    /// Message time-to-live.
    pub ttl: SimDuration,
}

impl TrafficSpec {
    /// The paper's workload at the given TTL.
    pub fn paper(ttl: SimDuration) -> Self {
        TrafficSpec {
            interval_lo: 15.0,
            interval_hi: 30.0,
            size_lo: 500_000,
            size_hi: 2_000_000,
            ttl,
        }
    }
}

/// A complete, reproducible experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label carried into reports.
    pub name: String,
    /// Master seed; all RNG lanes derive from it.
    pub seed: u64,
    /// Simulated duration in seconds (paper: 43 200 = 12 h).
    pub duration_secs: f64,
    /// Engine tick in seconds (paper-equivalent ONE default: 1 s).
    pub tick_secs: f64,
    /// Road map.
    pub map: MapSpec,
    /// Node groups; node ids are assigned in group order.
    pub groups: Vec<NodeGroup>,
    /// Radio model shared by all nodes.
    pub radio: RadioInterface,
    /// Contact-detection backend.
    pub detector: DetectorBackend,
    /// Traffic workload.
    pub traffic: TrafficSpec,
    /// Routing protocol.
    pub router: RouterKind,
    /// Scheduling/dropping combination (ignored by MaxProp and PRoPHET,
    /// which bring their own policies — exactly as in the paper).
    pub policy: PolicyCombo,
    /// Sampling period for time-series collectors, seconds (0 disables).
    pub sample_period_secs: f64,
}

impl Scenario {
    /// Total node count across groups.
    pub fn node_count(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Panic with a descriptive message if the configuration is invalid.
    pub fn validate(&self) {
        assert!(self.duration_secs > 0.0, "duration must be positive");
        assert!(self.tick_secs > 0.0, "tick must be positive");
        assert!(
            self.tick_secs <= self.duration_secs,
            "tick longer than the run"
        );
        assert!(!self.groups.is_empty(), "no node groups");
        self.radio.validate();
        let traffic_nodes: usize = self
            .groups
            .iter()
            .filter(|g| !g.is_relay)
            .map(|g| g.count)
            .sum();
        assert!(
            traffic_nodes >= 2,
            "need at least two non-relay nodes for traffic"
        );
        assert!(
            self.traffic.interval_lo > 0.0 && self.traffic.interval_hi >= self.traffic.interval_lo,
            "invalid traffic interval"
        );
        assert!(
            self.traffic.size_lo > 0 && self.traffic.size_hi >= self.traffic.size_lo,
            "invalid traffic sizes"
        );
        for g in &self.groups {
            assert!(g.count > 0, "empty group '{}'", g.name);
            assert!(g.buffer_bytes > 0, "zero buffer in group '{}'", g.name);
            if let MobilitySpec::ShortestPathMapBased(cfg) = &g.mobility {
                cfg.validate();
            }
        }
    }
}

/// Pick `count` relay positions: highest-degree vertices, greedily enforcing
/// a minimum spread of a quarter of the map diagonal (relaxed geometrically
/// until enough fit).
pub fn place_relays_high_degree(graph: &RoadGraph, count: usize) -> Vec<Point> {
    assert!(graph.vertex_count() > 0, "empty map");
    let mut by_degree: Vec<_> = graph.vertex_ids().collect();
    by_degree.sort_by_key(|&v| {
        // Stable order: degree descending, then id ascending.
        (std::cmp::Reverse(graph.degree(v)), v.0)
    });
    let bounds = graph.bounds();
    let diag = (bounds.width().powi(2) + bounds.height().powi(2)).sqrt();
    let mut min_dist = diag / 4.0;
    loop {
        let mut picked: Vec<Point> = Vec::with_capacity(count);
        for &v in &by_degree {
            let p = graph.position(v);
            if picked.iter().all(|&q| q.distance(p) >= min_dist) {
                picked.push(p);
                if picked.len() == count {
                    return picked;
                }
            }
        }
        // Not enough spread-out vertices: relax the constraint.
        min_dist /= 2.0;
        if min_dist < 1.0 {
            // Degenerate map: just take the top-degree vertices.
            return by_degree
                .iter()
                .take(count)
                .map(|&v| graph.position(v))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_sim_core::SimRng;

    fn minimal() -> Scenario {
        Scenario {
            name: "test".into(),
            seed: 1,
            duration_secs: 100.0,
            tick_secs: 1.0,
            map: MapSpec::Grid(GridMapGen {
                cols: 3,
                rows: 3,
                spacing: 100.0,
            }),
            groups: vec![NodeGroup {
                name: "vehicles".into(),
                count: 4,
                buffer_bytes: 1_000_000,
                mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig::default()),
                is_relay: false,
            }],
            radio: RadioInterface::paper_80211b(),
            detector: DetectorBackend::Grid,
            traffic: TrafficSpec::paper(SimDuration::from_mins(60)),
            router: RouterKind::Epidemic,
            policy: PolicyCombo::FIFO_FIFO,
            sample_period_secs: 0.0,
        }
    }

    #[test]
    fn minimal_scenario_validates() {
        minimal().validate();
        assert_eq!(minimal().node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "two non-relay nodes")]
    fn rejects_relay_only_traffic() {
        let mut s = minimal();
        s.groups[0].is_relay = true;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn rejects_zero_duration() {
        let mut s = minimal();
        s.duration_secs = 0.0;
        s.validate();
    }

    #[test]
    fn map_specs_build() {
        let mut rng = SimRng::seed_from_u64(1);
        let g = MapSpec::Grid(GridMapGen::default()).build(&mut rng);
        assert!(g.vertex_count() > 0);
        let s = MapSpec::Synthetic(SyntheticCityGen::default()).build(&mut rng);
        assert!(s.is_connected());
        let w = MapSpec::WktText("LINESTRING (0 0, 10 0, 20 0)".into()).build(&mut rng);
        assert_eq!(w.vertex_count(), 3);
    }

    #[test]
    fn relay_placement_spreads() {
        let mut rng = SimRng::seed_from_u64(2);
        let map = MapSpec::Synthetic(SyntheticCityGen::default()).build(&mut rng);
        let relays = place_relays_high_degree(&map, 5);
        assert_eq!(relays.len(), 5);
        // All distinct and reasonably spread.
        for i in 0..relays.len() {
            for j in (i + 1)..relays.len() {
                assert!(relays[i].distance(relays[j]) > 100.0);
            }
        }
    }

    #[test]
    fn relay_placement_degenerate_map() {
        let g = GridMapGen {
            cols: 2,
            rows: 2,
            spacing: 10.0,
        }
        .generate();
        let relays = place_relays_high_degree(&g, 4);
        assert_eq!(relays.len(), 4);
    }

    #[test]
    fn scenario_serde_round_trip() {
        let s = minimal();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

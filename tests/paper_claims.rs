//! The paper's headline claims, asserted as tests.
//!
//! These run scaled-down (but still congested) versions of the paper
//! scenario and check the *orderings* the paper reports. They are the
//! regression guard for the reproduction: if a refactor breaks the policy
//! machinery, these fail long before anyone re-runs the 12-hour figures.

use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::sweep::run_sweep;
use vdtn::Scenario;

/// Scaled paper scenario: full 45-node population and map, 2-hour horizon,
/// shortened pauses so the fleet mixes from the start.
fn scaled(proto: PaperProtocol, ttl: u64, seed: u64) -> Scenario {
    let mut s = paper_scenario(proto, ttl, seed);
    s.duration_secs = 7_200.0;
    for g in &mut s.groups {
        if let vdtn::scenario::MobilitySpec::ShortestPathMapBased(cfg) = &mut g.mobility {
            cfg.wait_hi = 300.0;
            cfg.wait_lo = 30.0;
        }
    }
    s
}

fn mean<F: Fn(&vdtn::SimReport) -> f64>(reports: &[vdtn::SimReport], f: F) -> f64 {
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Figures 4–5: on Epidemic, Lifetime DESC–Lifetime ASC beats FIFO–FIFO on
/// *both* metrics — the paper's central result.
#[test]
fn epidemic_lifetime_beats_fifo_on_both_metrics() {
    let seeds = [1u64, 2];
    let fifo: Vec<Scenario> = seeds
        .iter()
        .map(|&s| scaled(PaperProtocol::EpidemicFifo, 60, s))
        .collect();
    let life: Vec<Scenario> = seeds
        .iter()
        .map(|&s| scaled(PaperProtocol::EpidemicLifetime, 60, s))
        .collect();
    let rf = run_sweep(&fifo);
    let rl = run_sweep(&life);

    let fifo_delay = mean(&rf, |r| r.avg_delay_mins());
    let life_delay = mean(&rl, |r| r.avg_delay_mins());
    assert!(
        life_delay < fifo_delay,
        "lifetime delay {life_delay:.1} must beat FIFO {fifo_delay:.1}"
    );

    let fifo_p = mean(&rf, |r| r.delivery_probability());
    let life_p = mean(&rl, |r| r.delivery_probability());
    assert!(
        life_p > fifo_p - 0.02,
        "lifetime delivery {life_p:.3} must not trail FIFO {fifo_p:.3}"
    );
}

/// Figure 9: PRoPHET has the longest delays of the protocol comparison.
#[test]
fn prophet_has_longest_delays() {
    let scenarios: Vec<Scenario> = [
        PaperProtocol::SnwLifetime,
        PaperProtocol::MaxProp,
        PaperProtocol::Prophet,
    ]
    .iter()
    .map(|&p| scaled(p, 90, 3))
    .collect();
    let reports = run_sweep(&scenarios);
    let snw = reports[0].avg_delay_mins();
    let maxprop = reports[1].avg_delay_mins();
    let prophet = reports[2].avg_delay_mins();
    assert!(
        prophet > snw && prophet > maxprop,
        "PRoPHET {prophet:.1} must exceed SnW {snw:.1} and MaxProp {maxprop:.1}"
    );
}

/// Section III.B: Spray and Wait's quota keeps congestion far below
/// Epidemic's under identical conditions.
#[test]
fn snw_congests_less_than_epidemic() {
    let epi = run_sweep(&[scaled(PaperProtocol::EpidemicFifo, 90, 5)]);
    let snw = run_sweep(&[scaled(PaperProtocol::SnwFifo, 90, 5)]);
    assert!(
        snw[0].messages.relayed < epi[0].messages.relayed,
        "SnW relays {} must be below Epidemic {}",
        snw[0].messages.relayed,
        epi[0].messages.relayed
    );
    assert!(
        snw[0].messages.dropped_congestion <= epi[0].messages.dropped_congestion,
        "SnW drops {} must not exceed Epidemic {}",
        snw[0].messages.dropped_congestion,
        epi[0].messages.dropped_congestion
    );
}

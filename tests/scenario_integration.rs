//! Cross-crate integration tests: full simulations through the public API.

use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::scenario::{MapSpec, MobilitySpec, NodeGroup, RelayPlacement, Scenario, TrafficSpec};
use vdtn::{DetectorBackend, PolicyCombo, RouterKind, SimDuration, World};
use vdtn_geo::GridMapGen;
use vdtn_mobility::SpmbConfig;
use vdtn_net::RadioInterface;

fn short_mini(proto: PaperProtocol, ttl: u64, seed: u64) -> Scenario {
    let mut s = mini_scenario(proto, ttl, seed);
    s.duration_secs = 1_800.0;
    s
}

#[test]
fn all_protocols_complete_a_scenario() {
    for proto in [
        PaperProtocol::EpidemicFifo,
        PaperProtocol::EpidemicLifetime,
        PaperProtocol::SnwLifetime,
        PaperProtocol::MaxProp,
        PaperProtocol::Prophet,
    ] {
        let report = World::build(&short_mini(proto, 60, 1)).run();
        assert!(report.messages.created > 0, "{proto:?} created nothing");
        // Accounting sanity that must hold for any protocol.
        assert!(
            report.messages.delivered_unique
                + report.messages.delivered_duplicate
                + report.messages.relayed
                + report.messages.transfers_rejected
                + report.messages.transfers_aborted
                >= report.messages.transfers_aborted,
        );
        assert!(report.delivery_probability() <= 1.0);
        assert!(report.messages.delivered_unique <= report.messages.created);
    }
}

#[test]
fn full_stack_determinism() {
    let a = World::build(&short_mini(PaperProtocol::MaxProp, 90, 77)).run();
    let b = World::build(&short_mini(PaperProtocol::MaxProp, 90, 77)).run();
    assert_eq!(a.messages.created, b.messages.created);
    assert_eq!(a.messages.delivered_unique, b.messages.delivered_unique);
    assert_eq!(a.messages.relayed, b.messages.relayed);
    assert_eq!(a.messages.transfers_started, b.messages.transfers_started);
    assert_eq!(a.messages.dropped_congestion, b.messages.dropped_congestion);
    assert_eq!(a.contacts, b.contacts);
    assert_eq!(a.messages.bytes_transferred, b.messages.bytes_transferred);
}

#[test]
fn json_round_trip_of_scenario_and_report() {
    let s = short_mini(PaperProtocol::SnwLifetime, 60, 3);
    let json = serde_json::to_string(&s).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
    let report = World::build(&back).run();
    let rjson = serde_json::to_string(&report).unwrap();
    let rback: vdtn::SimReport = serde_json::from_str(&rjson).unwrap();
    assert_eq!(report.messages.created, rback.messages.created);
    assert_eq!(report.seed, rback.seed);
}

#[test]
fn detector_backends_agree_end_to_end() {
    let mut a = short_mini(PaperProtocol::EpidemicLifetime, 60, 5);
    a.detector = DetectorBackend::Grid;
    let mut b = a.clone();
    b.detector = DetectorBackend::Naive;
    let ra = World::build(&a).run();
    let rb = World::build(&b).run();
    // The backend is an implementation detail: identical physics.
    assert_eq!(ra.contacts, rb.contacts);
    assert_eq!(ra.messages.delivered_unique, rb.messages.delivered_unique);
    assert_eq!(ra.messages.relayed, rb.messages.relayed);
}

#[test]
fn relays_do_not_originate_traffic() {
    let s = short_mini(PaperProtocol::EpidemicFifo, 60, 9);
    let relay_start = s.groups[0].count as u32; // relays follow vehicles
    let world = World::build(&s);
    // Run a while, then inspect: every message in any buffer must have a
    // vehicle source and a vehicle destination.
    let mut world = world;
    for _ in 0..600 {
        world.step();
    }
    for i in 0..world.node_count() {
        let state = world.node_state(vdtn::NodeId(i as u32));
        for msg in state.buffer.iter() {
            assert!(msg.src.0 < relay_start, "relay-originated message {msg:?}");
            assert!(msg.dst.0 < relay_start, "relay-destined message {msg:?}");
        }
    }
}

#[test]
fn ttl_zero_messages_never_live() {
    // TTL equal to one tick: everything should expire essentially at birth;
    // nothing may be delivered with a delay beyond the TTL.
    let mut s = short_mini(PaperProtocol::EpidemicFifo, 60, 21);
    s.traffic.ttl = SimDuration::from_secs(1);
    let report = World::build(&s).run();
    assert_eq!(
        report.messages.delivered_unique, 0,
        "one-second TTL cannot cross a contact"
    );
    assert!(report.messages.dropped_expired > 0);
}

#[test]
fn no_delivery_exceeds_ttl() {
    for proto in [PaperProtocol::EpidemicLifetime, PaperProtocol::MaxProp] {
        let ttl_min = 30;
        let report = World::build(&short_mini(proto, ttl_min, 31)).run();
        if report.messages.delivered_unique > 0 {
            let max_delay_min = report.messages.delay.max().unwrap() / 60.0;
            assert!(
                max_delay_min <= ttl_min as f64 + 1.0 / 60.0,
                "{proto:?}: delivery after TTL ({max_delay_min:.2} min > {ttl_min} min)"
            );
        }
    }
}

#[test]
fn congestion_pressure_drops_messages() {
    // Tiny buffers: the drop policy must engage.
    let mut s = short_mini(PaperProtocol::EpidemicFifo, 60, 41);
    s.groups[0].buffer_bytes = 3_000_000; // ~2 messages worth
    let report = World::build(&s).run();
    assert!(
        report.messages.dropped_congestion > 0,
        "tiny buffers must overflow: {}",
        report.summary()
    );
}

#[test]
fn grid_map_scenario_with_explicit_relays() {
    // Exercise the explicit relay placement and plain grid map path.
    let s = Scenario {
        name: "explicit-relays".into(),
        seed: 4,
        duration_secs: 900.0,
        tick_secs: 1.0,
        map: MapSpec::Grid(GridMapGen {
            cols: 4,
            rows: 4,
            spacing: 150.0,
        }),
        groups: vec![
            NodeGroup {
                name: "vehicles".into(),
                count: 6,
                buffer_bytes: 10_000_000,
                mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig {
                    wait_lo: 10.0,
                    wait_hi: 60.0,
                    ..SpmbConfig::default()
                }),
                is_relay: false,
            },
            NodeGroup {
                name: "relays".into(),
                count: 2,
                buffer_bytes: 50_000_000,
                mobility: MobilitySpec::Stationary(RelayPlacement::Explicit(vec![
                    vdtn_geo::Point::new(150.0, 150.0),
                    vdtn_geo::Point::new(300.0, 300.0),
                ])),
                is_relay: true,
            },
        ],
        radio: RadioInterface::paper_80211b(),
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec::paper(SimDuration::from_mins(30)),
        router: RouterKind::Epidemic,
        policy: PolicyCombo::LIFETIME,
        sample_period_secs: 0.0,
    };
    let world = World::build(&s);
    // Relays sit exactly on road vertices.
    let p6 = world.node_position(vdtn::NodeId(6));
    let p7 = world.node_position(vdtn::NodeId(7));
    assert_eq!(p6, vdtn_geo::Point::new(150.0, 150.0));
    assert_eq!(p7, vdtn_geo::Point::new(300.0, 300.0));
    let report = world.run();
    assert!(report.messages.created > 0);
}

#[test]
fn wkt_map_scenario_runs() {
    let mut s = short_mini(PaperProtocol::SnwLifetime, 60, 8);
    s.map = MapSpec::WktText(
        "LINESTRING (0 0, 300 0, 600 0, 600 400, 300 400, 0 400, 0 0)\n\
         LINESTRING (300 0, 300 400)"
            .to_string(),
    );
    s.duration_secs = 900.0;
    let report = World::build(&s).run();
    assert!(report.contacts > 0, "closed toy map must generate contacts");
}

#[test]
fn policy_labels_propagate_to_reports() {
    let r = World::build(&short_mini(PaperProtocol::EpidemicLifetime, 60, 2)).run();
    assert_eq!(r.router, "Epidemic");
    assert_eq!(r.policy, "Lifetime DESC-Lifetime ASC");
    // Self-scheduling protocols report no policy.
    let r = World::build(&short_mini(PaperProtocol::MaxProp, 60, 2)).run();
    assert_eq!(r.router, "MaxProp");
    assert_eq!(r.policy, "");
}

#[test]
fn logged_run_and_oracle_bound() {
    let s = short_mini(PaperProtocol::EpidemicLifetime, 60, 13);
    let (report, log) = World::build(&s).run_logged();
    assert_eq!(log.messages.len() as u64, report.messages.created);
    assert_eq!(log.node_count, s.node_count());
    assert!(!log.contacts.is_empty());
    // The oracle is a true upper bound: no protocol delivers more than an
    // omniscient router with infinite bandwidth.
    let oracle = vdtn::oracle_summary(&log);
    assert!(
        oracle.deliverable as u64 >= report.messages.delivered_unique,
        "oracle {} < achieved {}",
        oracle.deliverable,
        report.messages.delivered_unique
    );
    // And the fitted meeting model yields sane finite expectations.
    let model = vdtn::MeetingModel::fit(&log);
    assert!(model.lambda > 0.0);
    assert!(model.expected_epidemic_delay_secs() < model.expected_direct_delay_secs());
}

#[test]
fn spray_and_focus_runs_and_moves_single_copies() {
    let mut s = short_mini(PaperProtocol::SnwLifetime, 60, 17);
    s.router = RouterKind::SprayAndFocus { copies: 8 };
    let report = World::build(&s).run();
    assert!(report.messages.created > 0);
    assert_eq!(report.router, "Spray and Focus");
    // Focus handoffs mean relays can relinquish copies; lifecycle still balances.
    let m = &report.messages;
    assert_eq!(
        m.delivered_unique
            + m.delivered_duplicate
            + m.relayed
            + m.transfers_rejected
            + m.transfers_aborted,
        m.transfers_started
    );
}

//! Build-surface smoke test: constructs a tiny scenario **through the
//! umbrella crate's re-exports only** and checks the parallel sweep contract
//! (reports come back in input order, one per scenario, deterministically).
//!
//! This is the canary for the workspace wiring itself: if a re-export, a
//! manifest dependency, or the sweep layer breaks, this fails before the
//! heavier paper-claim suites run.

use vdtn_repro::sim_core::SimDuration;
use vdtn_repro::vdtn::presets::PaperProtocol;
use vdtn_repro::vdtn::scenario::TrafficSpec;
use vdtn_repro::vdtn::sweep::run_sweep;
use vdtn_repro::vdtn::{
    DetectorBackend, MapSpec, MobilitySpec, NodeGroup, PolicyCombo, RouterKind, Scenario, World,
};
use vdtn_repro::{geo, mobility, net};

/// A 5-node scenario on a 3×3 grid map, built field by field from umbrella
/// re-exports (no preset shortcuts), so the whole public surface is touched.
fn five_node_scenario(seed: u64) -> Scenario {
    Scenario {
        name: format!("smoke/5-node/seed{seed}"),
        seed,
        duration_secs: 300.0,
        tick_secs: 1.0,
        map: MapSpec::Grid(geo::GridMapGen {
            cols: 3,
            rows: 3,
            spacing: 100.0,
        }),
        groups: vec![NodeGroup {
            name: "vehicles".into(),
            count: 5,
            buffer_bytes: 10_000_000,
            mobility: MobilitySpec::ShortestPathMapBased(mobility::SpmbConfig::default()),
            is_relay: false,
        }],
        radio: net::RadioInterface::paper_80211b(),
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec::paper(SimDuration::from_mins(10)),
        router: RouterKind::Epidemic,
        policy: PolicyCombo::FIFO_FIFO,
        sample_period_secs: 0.0,
    }
}

#[test]
fn sweep_returns_reports_in_input_order_for_two_seeds() {
    let scenarios: Vec<Scenario> = [11u64, 22].iter().map(|&s| five_node_scenario(s)).collect();
    let reports = run_sweep(&scenarios);

    assert_eq!(reports.len(), 2, "one report per scenario");
    // Input order is preserved: report i belongs to scenario i.
    assert_eq!(reports[0].seed, 11);
    assert_eq!(reports[1].seed, 22);
    assert_eq!(reports[0].scenario, "smoke/5-node/seed11");
    assert_eq!(reports[1].scenario, "smoke/5-node/seed22");

    // The runs actually simulated something.
    for r in &reports {
        assert!(r.messages.created > 0, "traffic generator produced nothing");
        assert_eq!(r.duration_secs, 300.0);
    }

    // And the parallel sweep matches serial execution bit-for-bit.
    for (scenario, parallel) in scenarios.iter().zip(&reports) {
        let serial = World::build(scenario).run();
        assert_eq!(parallel.messages.created, serial.messages.created);
        assert_eq!(
            parallel.messages.delivered_unique,
            serial.messages.delivered_unique
        );
        assert_eq!(parallel.contacts, serial.contacts);
    }
}

#[test]
fn paper_preset_builds_through_umbrella() {
    use vdtn_repro::vdtn::presets::paper_scenario;

    let s = paper_scenario(PaperProtocol::EpidemicLifetime, 60, 1);
    s.validate();
    // Paper setup: 45 vehicles (plus optional relays depending on preset).
    assert!(s.node_count() >= 45);
}

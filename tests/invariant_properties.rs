//! Property-based tests over whole-simulation invariants.
//!
//! These run many short randomised simulations, so each property keeps its
//! case count small; unit-level properties (buffer accounting, policy
//! permutations, grid-vs-naive equivalence) live in the owning crates.

use proptest::prelude::*;
use std::collections::HashMap;
use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::scenario::Scenario;
use vdtn::{NodeId, World};
use vdtn_bundle::MessageId;

fn tiny(proto: PaperProtocol, seed: u64, buffer_mb: u64) -> Scenario {
    let mut s = mini_scenario(proto, 20, seed);
    s.duration_secs = 600.0;
    s.groups[0].buffer_bytes = buffer_mb * 1_000_000;
    s
}

/// Total Spray-and-Wait logical copies of any message never exceed L = 12.
#[test]
fn snw_copy_conservation() {
    for seed in 0..5u64 {
        let s = tiny(PaperProtocol::SnwLifetime, seed, 10);
        let mut world = World::build(&s);
        for step in 0..600 {
            world.step();
            if step % 25 != 0 {
                continue;
            }
            let mut totals: HashMap<MessageId, u32> = HashMap::new();
            for i in 0..world.node_count() {
                for msg in world.node_state(NodeId(i as u32)).buffer.iter() {
                    *totals.entry(msg.id).or_insert(0) += msg.copies;
                }
            }
            for (id, total) in totals {
                assert!(
                    total <= 12,
                    "seed {seed} step {step}: message {id} has {total} copies > L"
                );
            }
        }
    }
}

/// After every tick's TTL sweep, no buffer retains an expired message.
#[test]
fn no_expired_messages_survive_the_sweep() {
    for proto in [PaperProtocol::EpidemicFifo, PaperProtocol::MaxProp] {
        let s = tiny(proto, 3, 10);
        let mut world = World::build(&s);
        for _ in 0..600 {
            world.step();
            let now = world.now();
            for i in 0..world.node_count() {
                for msg in world.node_state(NodeId(i as u32)).buffer.iter() {
                    assert!(
                        !msg.is_expired(now),
                        "{proto:?}: expired message {} still stored at {now}",
                        msg.id
                    );
                }
            }
        }
    }
}

/// Buffers never exceed their configured byte capacity, under any protocol.
#[test]
fn buffers_never_exceed_capacity() {
    for proto in [
        PaperProtocol::EpidemicFifo,
        PaperProtocol::SnwFifo,
        PaperProtocol::Prophet,
        PaperProtocol::MaxProp,
    ] {
        let s = tiny(proto, 11, 4); // 4 MB: heavy contention
        let mut world = World::build(&s);
        for _ in 0..600 {
            world.step();
            for i in 0..world.node_count() {
                let b = &world.node_state(NodeId(i as u32)).buffer;
                assert!(
                    b.used() <= b.capacity(),
                    "{proto:?}: node {i} over capacity"
                );
                let sum: u64 = b.iter().map(|m| m.size).sum();
                assert_eq!(sum, b.used(), "{proto:?}: byte accounting drift");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delivery counters are consistent for arbitrary seeds and buffer sizes.
    #[test]
    fn report_accounting_consistent(seed in 0u64..1000, buffer_mb in 2u64..40) {
        let s = tiny(PaperProtocol::EpidemicLifetime, seed, buffer_mb);
        let report = World::build(&s).run();
        let m = &report.messages;
        prop_assert!(m.delivered_unique <= m.created);
        // Every completed transfer is delivered, relayed, or rejected.
        let completions = m.delivered_unique + m.delivered_duplicate + m.relayed
            + m.transfers_rejected;
        prop_assert_eq!(
            completions + m.transfers_aborted,
            m.transfers_started,
            "transfer lifecycle must balance: {}", report.summary()
        );
        // Bytes moved are bounded by completions × max message size.
        prop_assert!(m.bytes_transferred <= completions * 2_000_000);
    }

    /// Determinism holds for arbitrary seeds (full stack, short horizon).
    #[test]
    fn determinism_for_any_seed(seed in 0u64..10_000) {
        let s = {
            let mut s = tiny(PaperProtocol::SnwLifetime, seed, 10);
            s.duration_secs = 300.0;
            s
        };
        let a = World::build(&s).run();
        let b = World::build(&s).run();
        prop_assert_eq!(a.messages.created, b.messages.created);
        prop_assert_eq!(a.messages.delivered_unique, b.messages.delivered_unique);
        prop_assert_eq!(a.messages.transfers_started, b.messages.transfers_started);
        prop_assert_eq!(a.contacts, b.contacts);
    }
}

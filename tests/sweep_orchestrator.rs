//! End-to-end properties of the sweep orchestrator (`vdtn::orchestrator`):
//! canonical manifest expansion, thread-count invariance, and
//! kill-and-resume journal equivalence.
//!
//! The expansion properties run on plans only (no simulation), so they can
//! afford many random cases; the execution properties run real (tiny)
//! sweeps and keep their case counts small.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use vdtn::orchestrator::{run_manifest, ScenarioBase, SweepManifest, SweepOptions};
use vdtn::presets::PaperProtocol;

const ALL_PROTOCOLS: [PaperProtocol; 8] = [
    PaperProtocol::EpidemicFifo,
    PaperProtocol::EpidemicRandom,
    PaperProtocol::EpidemicLifetime,
    PaperProtocol::SnwFifo,
    PaperProtocol::SnwRandom,
    PaperProtocol::SnwLifetime,
    PaperProtocol::MaxProp,
    PaperProtocol::Prophet,
];

/// Build a paper-base manifest from raw axis draws. Axis vectors may
/// contain duplicates and arrive in any order — expansion must
/// canonicalise both away.
fn draw_manifest(
    proto_mask: u8,
    ttls: Vec<u64>,
    seeds: Vec<u64>,
    vehicles: Vec<usize>,
) -> SweepManifest {
    let protocols: Vec<PaperProtocol> = ALL_PROTOCOLS
        .iter()
        .enumerate()
        .filter(|(i, _)| proto_mask & (1 << i) != 0)
        .map(|(_, &p)| p)
        .collect();
    let mut m = SweepManifest::paper("prop", &protocols, &ttls, &seeds);
    m.vehicles = vehicles;
    m
}

/// Deterministically permute a vector using a seed (the shim has no
/// shuffle strategy; an LCG-driven Fisher–Yates is enough to exercise
/// arbitrary listing orders).
fn permuted<T: Clone>(v: &[T], mut seed: u64) -> Vec<T> {
    let mut out = v.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.swap(i, (seed >> 33) as usize % (i + 1));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expansion is total and duplicate-free: every (protocol, vehicles,
    /// TTL, seed) combination appears exactly once, whatever duplicates
    /// the axes contain.
    #[test]
    fn expansion_is_total_and_duplicate_free(
        proto_mask in 1u8..255,
        ttls in collection::vec(1u64..300, 1..4),
        seeds in collection::vec(0u64..1000, 1..5),
        vehicles in collection::vec(1usize..200, 0..3),
        dup_index in 0usize..16,
    ) {
        let mut ttls = ttls;
        // Inject a duplicate axis value: canonical expansion must dedup it.
        ttls.push(ttls[dup_index % ttls.len()]);
        let manifest = draw_manifest(proto_mask, ttls.clone(), seeds.clone(), vehicles.clone());
        let plan = manifest.expand().expect("non-empty axes expand");

        let uniq = |v: &[u64]| v.iter().collect::<HashSet<_>>().len();
        let proto_count = proto_mask.count_ones() as usize;
        let veh_count = vehicles.iter().collect::<HashSet<_>>().len().max(1);
        let expected = proto_count * veh_count * uniq(&ttls) * uniq(&seeds);
        prop_assert_eq!(plan.len(), expected, "expansion must cover the axis product exactly");

        let ids: HashSet<String> = plan.runs.iter().map(|r| r.id("prop")).collect();
        prop_assert_eq!(ids.len(), plan.len(), "run IDs must be unique");
        // Runs point at valid cells, in canonical (cell-major) order.
        let mut last_cell = 0usize;
        for run in &plan.runs {
            prop_assert!(run.cell < plan.cells.len());
            prop_assert!(run.cell >= last_cell, "seeds must stay contiguous per cell");
            last_cell = run.cell;
        }
    }

    /// The canonical run list ignores axis listing order: permuting every
    /// axis yields the identical plan (same IDs, same order, same
    /// fingerprint), which is what makes journals portable across
    /// manifest files that mean the same sweep.
    #[test]
    fn expansion_order_stable_under_axis_permutation(
        proto_mask in 1u8..255,
        ttls in collection::vec(1u64..300, 1..4),
        seeds in collection::vec(0u64..1000, 1..5),
        vehicles in collection::vec(1usize..200, 0..3),
        perm_seed in any::<u64>(),
    ) {
        let a = draw_manifest(proto_mask, ttls.clone(), seeds.clone(), vehicles.clone());
        let mut b = draw_manifest(
            proto_mask,
            permuted(&ttls, perm_seed),
            permuted(&seeds, perm_seed ^ 0x9e3779b97f4a7c15),
            permuted(&vehicles, perm_seed.rotate_left(17)),
        );
        b.protocols = permuted(&b.protocols, perm_seed.rotate_left(41));
        let plan_a = a.expand().expect("expands");
        let plan_b = b.expand().expect("expands");
        let ids_a: Vec<String> = plan_a.runs.iter().map(|r| r.id("prop")).collect();
        let ids_b: Vec<String> = plan_b.runs.iter().map(|r| r.id("prop")).collect();
        prop_assert_eq!(ids_a, ids_b, "canonical order must not depend on listing order");
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

/// The tiny sweep used by the execution properties: 8 runs of the mini
/// scenario, a few milliseconds each.
fn tiny_manifest() -> SweepManifest {
    let mut m = SweepManifest::paper(
        "tiny",
        &[PaperProtocol::EpidemicFifo, PaperProtocol::SnwLifetime],
        &[30, 60],
        &[7, 8],
    );
    m.base = ScenarioBase::Mini;
    m.duration_secs = 600.0;
    m
}

fn points_json(outcome: &vdtn::orchestrator::SweepOutcome) -> String {
    serde_json::to_string(&outcome.points).expect("points serialise")
}

/// Aggregates are bit-identical whatever the pool size and chunking.
#[test]
fn aggregates_bit_identical_at_any_thread_count() {
    let manifest = tiny_manifest();
    let baseline = points_json(
        &run_manifest(
            &manifest,
            &SweepOptions {
                threads: 1,
                ..SweepOptions::default()
            },
        )
        .expect("tiny sweep runs"),
    );
    for (threads, chunk_size) in [(2, 0), (4, 1), (8, 3)] {
        let outcome = run_manifest(
            &manifest,
            &SweepOptions {
                threads,
                chunk_size,
                ..SweepOptions::default()
            },
        )
        .expect("tiny sweep runs");
        assert_eq!(
            points_json(&outcome),
            baseline,
            "aggregate diverged at {threads} threads / chunk size {chunk_size}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill-and-resume equivalence: truncate the journal of a finished
    /// sweep at a random record boundary — including zero (header only)
    /// and all of them (full replay) — optionally tear the tail
    /// mid-record, resume, and the aggregate must be byte-identical to
    /// the uninterrupted run.
    #[test]
    fn resume_from_truncated_journal_is_bit_identical(
        keep_fraction in 0u64..9,
        torn_tail in any::<bool>(),
        threads in 1usize..5,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let manifest = tiny_manifest();
        let journal = std::env::temp_dir().join(format!(
            "vdtn_resume_prop_{}_{}.jsonl",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let opts = |resume: bool| SweepOptions {
            threads,
            journal: Some(journal.clone()),
            resume,
            ..SweepOptions::default()
        };

        let cold = run_manifest(&manifest, &opts(false)).expect("cold run succeeds");
        let baseline = points_json(&cold);
        let runs = cold.runs_total;

        // Keep the header plus a random prefix of the records; the journal
        // is append-per-chunk, so every line boundary is a state a kill
        // can leave behind.
        let keep = (runs as u64 * keep_fraction / 8) as usize;
        let text = std::fs::read_to_string(&journal).expect("journal readable");
        let mut kept: String = text
            .lines()
            .take(1 + keep)
            .map(|l| format!("{l}\n"))
            .collect();
        if torn_tail {
            // A kill mid-`write` leaves a partial record: replay must
            // discard it and resume from the last complete line.
            kept.push_str("{\"id\": \"tiny/Epi");
        }
        std::fs::write(&journal, kept).expect("journal writable");

        let resumed = run_manifest(&manifest, &opts(true)).expect("resume succeeds");
        std::fs::remove_file(&journal).ok();
        prop_assert_eq!(resumed.runs_replayed, keep);
        prop_assert_eq!(resumed.runs_executed, runs - keep);
        prop_assert_eq!(
            points_json(&resumed),
            baseline,
            "resume after keeping {} of {} runs must be bit-identical",
            keep,
            runs
        );
    }
}

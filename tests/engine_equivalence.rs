//! Ticked vs event-driven engine equivalence.
//!
//! The hybrid event-driven scheduler ([`EngineMode::EventDriven`]) must be
//! **bit-identical** to the reference ticked loop ([`EngineMode::Ticked`])
//! — not statistically close: the same seed must produce byte-for-byte the
//! same [`SimReport`] (modulo wall-clock time). This suite pins that
//! contract two ways:
//!
//! * deterministic runs covering every routing protocol, relay
//!   infrastructure (stationary nodes), both detector backends, sampling
//!   on/off, and a TTL short enough to exercise the expiry path;
//! * a property test over randomly drawn small scenarios (seed, node
//!   count, TTL, policy, duration), the satellite requested in the issue;
//! * transfer-heavy scenarios for the event-time transfer pipeline: slow
//!   radios make every transfer span many ticks, so completions land on
//!   scheduled `TransferComplete` instants, contacts break mid-transfer
//!   (abort + partial-byte settlement), and uniform message sizes on a
//!   stationary mesh force simultaneous completions that must resolve in
//!   pair-key order — deterministic runs plus a dedicated property test;
//! * the sharded parallel engine ([`EngineMode::Parallel`]): a fourth
//!   column in the router × policy matrix, plus a thread-count-invariance
//!   sweep pinning byte-equal reports at pool sizes 1, 2, 4 and 8 — the
//!   proof that shard partitioning, scan/commit ordering and the merge
//!   rules leak nothing about the worker count into the simulation.

use proptest::prelude::*;
use vdtn_repro::geo::GridMapGen;
use vdtn_repro::mobility::SpmbConfig;
use vdtn_repro::net::RadioInterface;
use vdtn_repro::vdtn::engine::{EngineMode, World};
use vdtn_repro::vdtn::scenario::{
    MapSpec, MobilitySpec, NodeGroup, RelayPlacement, Scenario, TrafficSpec,
};
use vdtn_repro::vdtn::{
    DetectorBackend, DropPolicy, MaxPropConfig, PolicyCombo, ProphetConfig, RouterKind,
    RoutingBackend, SchedulingPolicy, SimDuration, SimReport,
};

/// Canonical serialisation with the wall clock zeroed: equal strings ⟺
/// bit-identical reports (floats included — identical bits render to
/// identical JSON).
fn canon(mut r: SimReport) -> String {
    r.wall_secs = 0.0;
    serde_json::to_string(&r).expect("reports serialise")
}

fn both_modes(scenario: &Scenario) -> (String, String) {
    let ticked = World::build_with_mode(scenario, EngineMode::Ticked).run();
    let event = World::build_with_mode(scenario, EngineMode::EventDriven).run();
    (canon(ticked), canon(event))
}

/// Busy little scenario with vehicles *and* stationary relays.
#[allow(clippy::too_many_arguments)] // flat knobs read better in test call sites
fn scenario(
    router: RouterKind,
    policy: PolicyCombo,
    seed: u64,
    vehicles: usize,
    ttl_mins: u64,
    duration_secs: f64,
    detector: DetectorBackend,
    sample_period_secs: f64,
) -> Scenario {
    Scenario {
        name: "equivalence".into(),
        seed,
        duration_secs,
        tick_secs: 1.0,
        map: MapSpec::Grid(GridMapGen {
            cols: 4,
            rows: 4,
            spacing: 110.0,
        }),
        groups: vec![
            NodeGroup {
                name: "vehicles".into(),
                count: vehicles,
                buffer_bytes: 12_000_000,
                mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig {
                    wait_lo: 5.0,
                    wait_hi: 60.0,
                    ..SpmbConfig::default()
                }),
                is_relay: false,
            },
            NodeGroup {
                name: "relays".into(),
                count: 2,
                buffer_bytes: 25_000_000,
                mobility: MobilitySpec::Stationary(RelayPlacement::HighDegreeSpread),
                is_relay: true,
            },
        ],
        radio: RadioInterface::paper_80211b(),
        detector,
        traffic: TrafficSpec::paper(SimDuration::from_mins(ttl_mins)),
        router,
        policy,
        sample_period_secs,
    }
}

#[test]
fn every_protocol_is_bit_identical_across_modes() {
    let kinds = [
        RouterKind::Epidemic,
        RouterKind::paper_snw(),
        RouterKind::Prophet(ProphetConfig::default()),
        RouterKind::MaxProp(MaxPropConfig::default()),
        RouterKind::DirectDelivery,
        RouterKind::FirstContact,
        RouterKind::SprayAndFocus { copies: 8 },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let sc = scenario(
            kind.clone(),
            PolicyCombo::LIFETIME,
            40 + i as u64,
            8,
            10, // short TTL: messages expire mid-run, exercising TTL events
            1_500.0,
            DetectorBackend::Grid,
            60.0,
        );
        let (ticked, event) = both_modes(&sc);
        assert_eq!(ticked, event, "{kind:?} diverged across engine modes");
    }
}

/// The acceptance matrix: for **every router × every scheduling policy**,
/// the delta-maintained candidate index must be bit-identical to the
/// cursor-only rescan revision *and* across engine modes. Four runs per
/// combination: Ticked+Index, EventDriven+Index, EventDriven+Rescan, and
/// the sharded Parallel engine (Index backend, 2-thread pool) — any
/// divergence in the per-direction index maintenance (delta application,
/// rank keying, `Never` pruning, `Random`/discontinuity fallbacks, the
/// insert-count silence key) or in the parallel scan/commit split (plan
/// ordering, deferred-direction RNG lanes, busy re-checks, silence memo
/// writes) shows up as a report diff here.
#[test]
fn candidate_index_is_bit_identical_for_every_router_and_policy() {
    let kinds = [
        RouterKind::Epidemic,
        RouterKind::paper_snw(),
        RouterKind::Prophet(ProphetConfig::default()),
        RouterKind::MaxProp(MaxPropConfig::default()),
        RouterKind::DirectDelivery,
        RouterKind::FirstContact,
        RouterKind::SprayAndFocus { copies: 8 },
    ];
    let schedulings = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::Random,
        SchedulingPolicy::LifetimeDesc,
        SchedulingPolicy::LifetimeAsc,
        SchedulingPolicy::SmallestFirst,
        SchedulingPolicy::YoungestFirst,
        SchedulingPolicy::FewestHops,
    ];
    // Cycle the drop policies too, so eviction churn (a frequent source of
    // receiver-side deltas) varies across the matrix for free.
    let droppings = [
        DropPolicy::Fifo,
        DropPolicy::LifetimeAsc,
        DropPolicy::Random,
        DropPolicy::LargestFirst,
        DropPolicy::Tail,
        DropPolicy::MostHops,
    ];
    for (ki, kind) in kinds.into_iter().enumerate() {
        for (si, sched) in schedulings.into_iter().enumerate() {
            let policy = PolicyCombo {
                scheduling: sched,
                dropping: droppings[(ki + si) % droppings.len()],
            };
            let sc = scenario(
                kind.clone(),
                policy,
                200 + (ki * 7 + si) as u64,
                6,
                8, // short TTL: expiry deltas flow mid-run
                700.0,
                DetectorBackend::Grid,
                0.0,
            );
            let ticked_index = canon(
                World::build_with_options(&sc, EngineMode::Ticked, RoutingBackend::Index).run(),
            );
            let event_index = canon(
                World::build_with_options(&sc, EngineMode::EventDriven, RoutingBackend::Index)
                    .run(),
            );
            let event_rescan = canon(
                World::build_with_options(&sc, EngineMode::EventDriven, RoutingBackend::Rescan)
                    .run(),
            );
            let parallel =
                canon(World::build_parallel_with_threads(&sc, RoutingBackend::Index, 2).run());
            assert_eq!(
                event_index, event_rescan,
                "{kind:?} × {sched:?}: index diverged from the cursor-only rescan"
            );
            assert_eq!(
                ticked_index, event_index,
                "{kind:?} × {sched:?}: engine modes diverged under the index"
            );
            assert_eq!(
                event_index, parallel,
                "{kind:?} × {sched:?}: sharded parallel engine diverged"
            );
        }
    }
}

/// Thread-count invariance: the sharded parallel engine must produce
/// byte-equal reports at pool sizes 1, 2, 4 and 8 — and equal to the
/// serial event engine — on scenarios exercising flooding, utility
/// metrics (deferred-free), quota routing, and RNG-drawing Random
/// scheduling (every pair deferred). The shard tiling is fixed from the
/// initial layout, scan outputs are slot-indexed, and the commit walks
/// canonical pair order, so nothing about the pool size may leak into a
/// single simulation byte.
#[test]
fn parallel_engine_is_thread_count_invariant() {
    let cases = [
        (RouterKind::Epidemic, PolicyCombo::LIFETIME, 301u64),
        (
            RouterKind::Prophet(ProphetConfig::default()),
            PolicyCombo::FIFO_FIFO,
            302,
        ),
        (RouterKind::paper_snw(), PolicyCombo::RANDOM_FIFO, 303),
        (
            RouterKind::MaxProp(MaxPropConfig::default()),
            PolicyCombo::LIFETIME,
            304,
        ),
    ];
    for (kind, policy, seed) in cases {
        let sc = scenario(
            kind.clone(),
            policy,
            seed,
            8,
            12,
            1_200.0,
            DetectorBackend::Grid,
            60.0,
        );
        let reference = canon(World::build_with_mode(&sc, EngineMode::EventDriven).run());
        for threads in [1usize, 2, 4, 8] {
            let par = canon(
                World::build_parallel_with_threads(&sc, RoutingBackend::default(), threads).run(),
            );
            assert_eq!(
                reference, par,
                "{kind:?} × {policy:?}: report depends on pool size {threads}"
            );
        }
    }
}

#[test]
fn naive_detector_backend_is_bit_identical_across_modes() {
    let sc = scenario(
        RouterKind::Epidemic,
        PolicyCombo::FIFO_FIFO,
        91,
        6,
        20,
        1_200.0,
        DetectorBackend::Naive,
        0.0, // sampling off: exercises the no-Sample-event path
    );
    let (ticked, event) = both_modes(&sc);
    assert_eq!(ticked, event);
}

#[test]
fn long_quiet_tail_is_skipped_identically() {
    // Long waits and a short TTL leave most of the run quiescent — the
    // regime where the event engine skips the most ticks and any wake-up
    // accounting bug (clock, tick parity, TTL heap) would surface.
    let mut sc = scenario(
        RouterKind::paper_snw(),
        PolicyCombo::LIFETIME,
        5,
        5,
        5,
        3_600.0,
        DetectorBackend::Grid,
        120.0,
    );
    if let MobilitySpec::ShortestPathMapBased(cfg) = &mut sc.groups[0].mobility {
        cfg.wait_lo = 300.0;
        cfg.wait_hi = 900.0;
    }
    let (ticked, event) = both_modes(&sc);
    assert_eq!(ticked, event);
}

/// Transfer-heavy variant: a radio so slow that every bundle drains for
/// tens to hundreds of ticks. Moving vehicles then break contacts
/// mid-transfer (exercising abort settlement), and the engine spends most
/// of its life with busy links — the regime where the event engine rides
/// `TransferComplete` instants instead of per-tick byte draining.
#[allow(clippy::too_many_arguments)] // flat knobs read better in test call sites
fn transfer_heavy_scenario(
    router: RouterKind,
    policy: PolicyCombo,
    seed: u64,
    vehicles: usize,
    rate_bytes_per_sec: f64,
    size_lo: u64,
    size_hi: u64,
    duration_secs: f64,
) -> Scenario {
    let mut sc = scenario(
        router,
        policy,
        seed,
        vehicles,
        30,
        duration_secs,
        DetectorBackend::Grid,
        60.0,
    );
    sc.name = "transfer-heavy".into();
    sc.radio = RadioInterface {
        range: 30.0,
        rate: rate_bytes_per_sec,
    };
    sc.traffic.size_lo = size_lo;
    sc.traffic.size_hi = size_hi;
    sc
}

#[test]
fn slow_radio_transfers_and_aborts_are_bit_identical() {
    // 20 kB/s against 0.5–2 MB bundles: 25–100 s per transfer, far longer
    // than most contacts, so link-downs abort mid-transfer constantly and
    // the aborted-byte settlement must agree between modes too.
    for (i, kind) in [
        RouterKind::Epidemic,
        RouterKind::paper_snw(),
        RouterKind::MaxProp(MaxPropConfig::default()),
    ]
    .into_iter()
    .enumerate()
    {
        let sc = transfer_heavy_scenario(
            kind.clone(),
            PolicyCombo::LIFETIME,
            70 + i as u64,
            8,
            20_000.0,
            500_000,
            2_000_000,
            1_500.0,
        );
        let (ticked, event) = both_modes(&sc);
        assert_eq!(ticked, event, "{kind:?} diverged on slow-radio transfers");
    }
}

#[test]
fn simultaneous_completions_resolve_identically() {
    // Stationary relays in permanent mutual contact plus uniform message
    // sizes: transfers started in the same routing round complete at the
    // same instant, so this run lives on the pair-key tie-break rule.
    let mut sc = scenario(
        RouterKind::Epidemic,
        PolicyCombo::FIFO_FIFO,
        171,
        6,
        20,
        1_200.0,
        DetectorBackend::Grid,
        0.0,
    );
    sc.name = "simultaneous-completions".into();
    sc.radio = RadioInterface {
        range: 30.0,
        rate: 50_000.0,
    };
    sc.traffic.size_lo = 600_000; // uniform size ⇒ equal drain durations
    sc.traffic.size_hi = 600_000;
    if let MobilitySpec::ShortestPathMapBased(cfg) = &mut sc.groups[0].mobility {
        // Long pauses: vehicles mostly sit in range, keeping many
        // same-rate transfers in flight concurrently.
        cfg.wait_lo = 200.0;
        cfg.wait_hi = 600.0;
    }
    let (ticked, event) = both_modes(&sc);
    assert_eq!(ticked, event);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random small scenarios through both engine paths must produce
    /// identical `SimReport`s.
    #[test]
    fn random_scenarios_are_bit_identical(
        seed in any::<u64>(),
        vehicles in 4usize..9,
        ttl_mins in 4u64..45,
        duration_ticks in 400u64..1_200,
        router_pick in 0usize..4,
        policy_pick in 0usize..3,
        sampled in any::<bool>(),
    ) {
        let router = match router_pick {
            0 => RouterKind::Epidemic,
            1 => RouterKind::paper_snw(),
            2 => RouterKind::Prophet(ProphetConfig::default()),
            _ => RouterKind::MaxProp(MaxPropConfig::default()),
        };
        let policy = PolicyCombo::paper_table()[policy_pick];
        let sc = scenario(
            router,
            policy,
            seed,
            vehicles,
            ttl_mins,
            duration_ticks as f64,
            DetectorBackend::Grid,
            if sampled { 90.0 } else { 0.0 },
        );
        let (ticked, event) = both_modes(&sc);
        prop_assert_eq!(ticked, event);
    }

    /// Random transfer-heavy scenarios: slow radios (25–1000 s per bundle),
    /// both varied and uniform bundle sizes (the latter forces simultaneous
    /// completions), and moving vehicles whose contact breaks abort
    /// transfers mid-drain. Both engine paths must stay bit-identical
    /// through completions, aborts and partial-byte settlement.
    #[test]
    fn transfer_heavy_scenarios_are_bit_identical(
        seed in any::<u64>(),
        vehicles in 4usize..9,
        rate_pick in 0usize..3,
        uniform_sizes in any::<bool>(),
        duration_ticks in 600u64..1_400,
        router_pick in 0usize..3,
    ) {
        let router = match router_pick {
            0 => RouterKind::Epidemic,
            1 => RouterKind::paper_snw(),
            _ => RouterKind::Prophet(ProphetConfig::default()),
        };
        let rate = [2_000.0, 20_000.0, 80_000.0][rate_pick];
        let (size_lo, size_hi) = if uniform_sizes {
            (800_000, 800_000)
        } else {
            (500_000, 2_000_000)
        };
        let sc = transfer_heavy_scenario(
            router,
            PolicyCombo::LIFETIME,
            seed,
            vehicles,
            rate,
            size_lo,
            size_hi,
            duration_ticks as f64,
        );
        let (ticked, event) = both_modes(&sc);
        prop_assert_eq!(ticked, event);
    }
}

#!/usr/bin/env python3
"""Named CI gates over the bench-smoke artifacts.

CI used to carry these checks as inline `python3 - <<EOF` heredocs and
grep chains inside ci.yml, which made them impossible to run locally,
impossible to test, and easy to drift apart. Each gate now lives here
under a stable name; ci.yml invokes them one per step, and `self-test`
exercises every gate against synthetic fixtures (both passing and
violating) so a broken gate fails CI *as a broken gate*, not as a
silently-green no-op.

Usage:
    bench_gates.py smoke-identity BENCH.json ROUTING.json
    bench_gates.py perf-floor     BENCH.json ROUTING.json
    bench_gates.py memory-floor   BENCH.json BASELINE.json EXTRACT_OUT.json
    bench_gates.py sweep-resume   RUN_SCENARIO MANIFEST.json BASELINE.json
    bench_gates.py self-test

Every gate prints `gate <name>: PASS` on success, or the violations and
a non-zero exit. Gates are pure functions over their input files — no
gate runs a build.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path


# --- smoke-identity -------------------------------------------------------
#
# Shape and identity assertions over the bench-smoke JSON files: every
# expected section was recorded, and no entry anywhere reported diverging
# simulation results across engine modes, routing backends, thread counts
# or the memory probe. (Substring checks, faithful to the original grep
# chain: they assert the *recorded* text, not a parsed reinterpretation.)

def gate_smoke_identity(bench_path: str, routing_path: str) -> list[str]:
    bench = Path(bench_path).read_text()
    routing = Path(routing_path).read_text()
    bad = []
    for needle, where, text in [
        ('"threads": 2', bench_path, bench),
        ('"memory"', bench_path, bench),
        ('"motion"', bench_path, bench),
        ('"mobility_bound"', bench_path, bench),
        ('"parallel_wall_secs"', bench_path, bench),
        ('"transfer_bound"', bench_path, bench),
        ('"reports_identical": true', bench_path, bench),
        ('"benchmark": "routing_round"', routing_path, routing),
        ('"parallel_wall_secs"', routing_path, routing),
        ('"reports_identical": true', routing_path, routing),
    ]:
        if needle not in text:
            bad.append(f"{where}: missing expected `{needle}`")
    for where, text in [(bench_path, bench), (routing_path, routing)]:
        if '"reports_identical": false' in text:
            bad.append(f"{where}: engine modes or routing backends diverged")
    return bad


# --- perf-floor -----------------------------------------------------------
#
# The event-driven engine must not be slower than the ticked reference on
# any smoke scenario — including the mobility-bound row, where the
# motion-segment protocol must win on elided movement work alone — and the
# sharded parallel engine must stay within noise of the serial event
# engine on the routing smoke (its target regime). Relative comparisons
# between runs of the same build dodge absolute-threshold flakiness while
# still catching "accidentally pessimised" PRs. The 1.2x tolerance
# absorbs scheduler noise on millisecond-scale runs (real smoke speedups
# are 4-100x); the parallel floor gets +50 ms absolute grace because pool
# wake-up overhead dominates millisecond rows but vanishes at real scale.

def gate_perf_floor(bench_path: str, routing_path: str) -> list[str]:
    doc = json.load(open(bench_path))
    assert doc["schema_version"] >= 5, "smoke JSON too old for this gate"
    bad = []
    for section in ("entries", "transfer_bound", "mobility_bound"):
        for e in doc[section]:
            if e["event_wall_secs"] > 1.2 * e["ticked_wall_secs"]:
                bad.append(
                    f"[{section}] nodes={e['nodes']}: "
                    f"event {e['event_wall_secs']:.3f}s > 1.2 * "
                    f"ticked {e['ticked_wall_secs']:.3f}s"
                )
    routing = json.load(open(routing_path))
    assert routing["schema_version"] >= 3, "routing smoke JSON too old for this gate"
    for e in routing["entries"]:
        if e["parallel_wall_secs"] > 1.25 * e["index_wall_secs"] + 0.05:
            bad.append(
                f"[routing] nodes={e['nodes']}: "
                f"parallel {e['parallel_wall_secs']:.3f}s > 1.25 * "
                f"index {e['index_wall_secs']:.3f}s + 50ms"
            )
    return bad


# --- memory-floor ---------------------------------------------------------
#
# The smoke's per-process memory probe (same binary, hidden --memory-probe
# re-exec; peak VmHWM minus pre-build VmRSS) must stay within 1.15x of the
# committed bytes-per-node baseline, and the probe's own event-vs-parallel
# identity check must hold. Relative to a *committed* number — rather than
# between runs — because bytes/node is stable across runs of the same
# build (<2% observed), so per-copy or per-node bloat shows up directly.
# Re-baseline ci/memory_smoke_baseline.json consciously when layout
# changes are intentional. Writes the extracted section for the artifact
# upload.

def gate_memory_floor(bench_path: str, baseline_path: str, extract_out: str) -> list[str]:
    doc = json.load(open(bench_path))
    assert doc["schema_version"] >= 4, "smoke JSON too old for the memory gate"
    rows = doc.get("memory", [])
    assert rows, "memory section missing or empty in smoke JSON"
    base = json.load(open(baseline_path))
    limit = 1.15 * base["bytes_per_node"]
    bad = []
    for row in rows:
        if not row.get("reports_identical"):
            bad.append(f"nodes={row['nodes']}: memory probe reports diverged")
        if row["nodes"] == base["nodes"] and row["bytes_per_node"] > limit:
            bad.append(
                f"nodes={row['nodes']}: {row['bytes_per_node']} B/node "
                f"> 1.15 * baseline {base['bytes_per_node']}"
            )
    if not any(r["nodes"] == base["nodes"] for r in rows):
        bad.append(f"no memory row at baseline size {base['nodes']}")
    json.dump({"baseline": base, "rows": rows}, open(extract_out, "w"), indent=2)
    return bad


# --- sweep-resume ---------------------------------------------------------
#
# The checkpointed-resume contract, end to end through the run_scenario
# CLI: execute the committed CI manifest cold with a journal, truncate the
# journal to half its records (a simulated kill between chunk commits),
# resume, and require the two aggregate JSON files to be byte-identical.
# The runs/sec floor against the committed baseline (generous fraction)
# catches an orchestrator that degenerates to re-running replayed work or
# serialising on the journal, without being flaky on slow runners.

def sweep_floor_violations(runs: int, expected_runs: int, wall: float, base: dict) -> list[str]:
    bad = []
    if runs != expected_runs:
        bad.append(f"manifest expanded to {runs} runs, baseline expects {expected_runs}")
    rps = runs / max(wall, 1e-9)
    floor = base["runs_per_sec"] * base["floor_fraction"]
    print(
        f"cold sweep: {runs} runs in {wall:.2f}s = {rps:.0f} runs/s (floor {floor:.0f})"
    )
    if rps < floor:
        bad.append(f"runs/sec floor violated: {rps:.0f} < {floor:.0f}")
    return bad


def gate_sweep_resume(binary: str, manifest: str, baseline_path: str) -> list[str]:
    journal = "/tmp/sweep_smoke.jsonl"
    cold_out, resumed_out = "/tmp/sweep_cold.json", "/tmp/sweep_resumed.json"
    Path(journal).unlink(missing_ok=True)
    t0 = time.monotonic()
    subprocess.run(
        [binary, "--sweep", manifest, "--journal", journal, "--out", cold_out],
        check=True,
    )
    wall = time.monotonic() - t0
    lines = open(journal).read().splitlines(keepends=True)
    runs = len(lines) - 1  # header + one record per run
    keep = 1 + runs // 2
    open(journal, "w").writelines(lines[:keep])
    subprocess.run(
        [binary, "--sweep", manifest, "--journal", journal, "--resume",
         "--out", resumed_out],
        check=True,
    )
    bad = []
    if open(cold_out, "rb").read() != open(resumed_out, "rb").read():
        bad.append("resumed aggregate differs from the cold run")
    else:
        print("resumed aggregate byte-identical to the cold run")
    base = json.load(open(baseline_path))
    bad += sweep_floor_violations(runs, base["runs"], wall, base)
    return bad


# --- self-test ------------------------------------------------------------
#
# Every gate is run against a synthetic passing fixture AND a synthetic
# violating fixture; a gate that stops firing on violations is itself a
# CI failure. (sweep-resume needs a built binary, so its pure floor logic
# is what gets tested here.)

def gate_self_test() -> list[str]:
    bad = []
    with tempfile.TemporaryDirectory() as d:
        dd = Path(d)

        def wjson(name: str, doc: dict) -> str:
            p = dd / name
            p.write_text(json.dumps(doc, indent=1))
            return str(p)

        good_bench = wjson("bench_ok.json", {
            "schema_version": 5,
            "threads": 2,
            "memory": [{"nodes": 200, "bytes_per_node": 1_000, "reports_identical": True}],
            "motion": [],
            "entries": [{"nodes": 30, "event_wall_secs": 0.1, "ticked_wall_secs": 0.5,
                         "parallel_wall_secs": 0.1, "reports_identical": True}],
            "transfer_bound": [{"nodes": 30, "event_wall_secs": 0.1,
                                "ticked_wall_secs": 0.2, "reports_identical": True}],
            "mobility_bound": [{"nodes": 30, "event_wall_secs": 0.1,
                                "ticked_wall_secs": 0.9, "reports_identical": True}],
        })
        good_routing = wjson("routing_ok.json", {
            "schema_version": 3,
            "benchmark": "routing_round",
            "entries": [{"nodes": 48, "index_wall_secs": 0.2,
                         "parallel_wall_secs": 0.21, "reports_identical": True}],
        })
        slow_bench = wjson("bench_slow.json", {
            **json.load(open(good_bench)),
            "entries": [{"nodes": 30, "event_wall_secs": 1.0, "ticked_wall_secs": 0.1,
                         "parallel_wall_secs": 0.1, "reports_identical": True}],
        })
        drifted_routing = wjson("routing_drift.json", {
            **json.load(open(good_routing)),
            "entries": [{"nodes": 48, "index_wall_secs": 0.2,
                         "parallel_wall_secs": 0.2, "reports_identical": False}],
        })
        baseline = wjson("mem_base.json", {"nodes": 200, "bytes_per_node": 1_000})
        bloated_bench = wjson("bench_bloat.json", {
            **json.load(open(good_bench)),
            "memory": [{"nodes": 200, "bytes_per_node": 2_000, "reports_identical": True}],
        })
        extract = str(dd / "extract.json")

        cases = [
            ("smoke-identity passes clean fixtures",
             gate_smoke_identity(good_bench, good_routing), False),
            ("smoke-identity fires on reports_identical: false",
             gate_smoke_identity(good_bench, drifted_routing), True),
            ("perf-floor passes clean fixtures",
             gate_perf_floor(good_bench, good_routing), False),
            ("perf-floor fires on a slow event engine",
             gate_perf_floor(slow_bench, good_routing), True),
            ("memory-floor passes within baseline",
             gate_memory_floor(good_bench, baseline, extract), False),
            ("memory-floor fires on bytes/node bloat",
             gate_memory_floor(bloated_bench, baseline, extract), True),
            ("sweep floor passes at baseline throughput",
             sweep_floor_violations(12, 12, 0.1,
                                    {"runs_per_sec": 100, "floor_fraction": 0.25}), False),
            ("sweep floor fires on throughput collapse",
             sweep_floor_violations(12, 12, 60.0,
                                    {"runs_per_sec": 100, "floor_fraction": 0.25}), True),
            ("sweep floor fires on a plan-size mismatch",
             sweep_floor_violations(6, 12, 0.1,
                                    {"runs_per_sec": 100, "floor_fraction": 0.25}), True),
        ]
        for label, violations, should_fire in cases:
            fired = bool(violations)
            if fired != should_fire:
                bad.append(
                    f"self-test `{label}`: expected "
                    f"{'violations' if should_fire else 'clean'}, got {violations!r}"
                )
        if not Path(extract).is_file():
            bad.append("self-test: memory-floor did not write its extract file")
    return bad


GATES = {
    "smoke-identity": (gate_smoke_identity, 2),
    "perf-floor": (gate_perf_floor, 2),
    "memory-floor": (gate_memory_floor, 3),
    "sweep-resume": (gate_sweep_resume, 3),
    "self-test": (gate_self_test, 0),
}


def main(argv: list[str]) -> int:
    if len(argv) < 1 or argv[0] not in GATES:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    name = argv[0]
    fn, arity = GATES[name]
    if len(argv) - 1 != arity:
        print(f"gate {name}: expected {arity} argument(s), got {len(argv) - 1}",
              file=sys.stderr)
        return 2
    violations = fn(*argv[1:])
    if violations:
        print(f"gate {name}: FAIL")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"gate {name}: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Determinism lint: flag iteration over HashMap/HashSet in non-test code.

The simulator's bit-identity guarantees (engine-mode equivalence, thread
invariance, bench report identity) only hold if no observable ordering ever
derives from std hash-table iteration order, which is randomised per
instance. This lint scans `crates/*/src/**/*.rs` plus the umbrella
crate's `src/**/*.rs`, strips `#[cfg(test)]`
modules, and fails on any `for`-loop or ordering-sensitive method call
(`iter`, `keys`, `values`, `drain`, `difference`, ...) applied to an
identifier whose declared type in the same file is `HashMap`/`HashSet`.

Sites that have been audited (sorted immediately after collection, or
feeding only order-insensitive sinks like counters and membership tests)
are listed in `scripts/determinism_allowlist.txt` as `path:identifier`
pairs, one per line, each with a trailing `# why it is safe` comment.

A second check flags wall-clock reads (`Instant::now`, `SystemTime::now`)
in simulation crates (everything but `bench`): the motion-segment
protocol makes positions, contact windows and movement wakes pure
functions of simulated time, so a wall-clock value reaching any of them
would silently break engine-mode equivalence. Audited sites (e.g. the
engine's `wall_secs` stopwatch, which only feeds a report field the
identity checks zero out) use the allowlist identifier `wallclock`.

Exit status: 0 clean, 1 unaudited iteration or wall-clock read found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ALLOWLIST = ROOT / "scripts" / "determinism_allowlist.txt"

# Identifier declared with a hash-table type: struct fields, let bindings
# with annotations, fn params. Covers `x: HashMap<..>` and turbofish-free
# constructor bindings `let x = HashMap::new()`.
DECL_RE = re.compile(
    r"\b(\w+)\s*:\s*&?(?:mut\s+)?(?:std::collections::)?Hash(?:Map|Set)\s*<"
    r"|let\s+(?:mut\s+)?(\w+)(?::[^=]+)?=\s*(?:std::collections::)?Hash(?:Map|Set)::"
)

ITER_METHODS = (
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "difference",
    "intersection",
    "symmetric_difference",
    "union",
    "retain",
)


def strip_test_modules(src: str) -> str:
    """Blank out `#[cfg(test)] mod ... { ... }` bodies (keep line numbers)."""
    out = list(src)
    for m in re.finditer(r"#\[cfg\(test\)\]", src):
        brace = src.find("{", m.end())
        if brace < 0:
            continue
        depth = 0
        for i in range(brace, len(src)):
            if src[i] == "{":
                depth += 1
            elif src[i] == "}":
                depth -= 1
                if depth == 0:
                    for j in range(m.start(), i + 1):
                        if out[j] not in "\n":
                            out[j] = " "
                    break
    return "".join(out)


def load_allowlist() -> set[tuple[str, str]]:
    allowed = set()
    if ALLOWLIST.exists():
        for line in ALLOWLIST.read_text().splitlines():
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            path, ident = line.rsplit(":", 1)
            allowed.add((path, ident))
    return allowed


WALLCLOCK_RE = re.compile(r"\b(?:Instant|SystemTime)\s*::\s*now\s*\(")


def main() -> int:
    allowed = load_allowlist()
    failures = []
    paths = list(ROOT.glob("crates/*/src/**/*.rs")) + list(ROOT.glob("src/**/*.rs"))
    for path in sorted(paths):
        rel = path.relative_to(ROOT).as_posix()
        src = strip_test_modules(path.read_text())
        # Wall-clock reads in simulation crates (bench is measurement code).
        if not rel.startswith("crates/bench/") and (rel, "wallclock") not in allowed:
            for i, line in enumerate(src.splitlines(), start=1):
                if line.lstrip().startswith("//"):
                    continue
                if WALLCLOCK_RE.search(line):
                    failures.append(f"{rel}:{i}: wall-clock read in simulation code: {line.strip()}")
        hashy = set()
        for m in DECL_RE.finditer(src):
            hashy.add(m.group(1) or m.group(2))
        if not hashy:
            continue
        method_alt = "|".join(ITER_METHODS)
        for name in sorted(hashy):
            # `for x in &map` / `for x in map` (the bare-identifier forms)
            # and any ordering-sensitive method call on the identifier.
            pat = re.compile(
                rf"for\s+[^;{{]*?\bin\s+&?(?:mut\s+)?(?:self\.)?{name}\b\s*\{{"
                rf"|\b(?:self\.)?{name}\s*\.\s*(?:{method_alt})\s*\("
            )
            for i, line in enumerate(src.splitlines(), start=1):
                if line.lstrip().startswith("//"):
                    continue
                if pat.search(line) and (rel, name) not in allowed:
                    failures.append(f"{rel}:{i}: iteration over hash table `{name}`: {line.strip()}")
    if failures:
        print("determinism lint: unaudited HashMap/HashSet iteration in non-test code:")
        for f in failures:
            print(f"  {f}")
        print(
            "\nEither sort the collected entries before any observable use and add\n"
            f"`<path>:<identifier>  # reason` to {ALLOWLIST.relative_to(ROOT)}, or\n"
            "switch the container to an order-stable structure (sorted Vec, slab)."
        )
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Determinism lint: flag iteration over HashMap/HashSet in non-test code.

The simulator's bit-identity guarantees (engine-mode equivalence, thread
invariance, bench report identity, snapshot/restore hash stability) only
hold if no observable ordering ever derives from std hash-table iteration
order, which is randomised per instance. This lint scans
`crates/*/src/**/*.rs`, `crates/*/examples/**/*.rs` and the umbrella
crate's `src/**/*.rs`, strips `#[cfg(test)]`
modules, and fails on any `for`-loop or ordering-sensitive method call
(`iter`, `keys`, `values`, `drain`, `difference`, ...) applied to an
identifier whose declared type in the same file is `HashMap`/`HashSet`.
Snapshot and state-hash code is the highest-stakes audience: a hash-order
leak there turns into CI drift-matrix failures that reproduce on no
developer machine.

Sites that have been audited (sorted immediately after collection, or
feeding only order-insensitive sinks like counters and membership tests)
are listed in `scripts/determinism_allowlist.txt` as `path:identifier`
pairs, one per line, each with a trailing `# why it is safe` comment.

A second check flags wall-clock reads (`Instant::now`, `SystemTime::now`)
in simulation crates (everything but `bench`): the motion-segment
protocol makes positions, contact windows and movement wakes pure
functions of simulated time, so a wall-clock value reaching any of them
would silently break engine-mode equivalence. Audited sites (e.g. the
engine's `wall_secs` stopwatch, which only feeds a report field the
identity checks zero out) use the allowlist identifier `wallclock`.

The allowlist itself is checked: every line must parse as
`path:identifier  # justification`, name a file that exists, carry a
non-empty justification, be unique — and actually suppress something. A
stale entry (its site was removed or rewritten) fails the lint, so the
audit record can never rot into a blanket waiver.

Exit status: 0 clean, 1 on unaudited iteration, wall-clock read, or a
malformed/stale allowlist.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ALLOWLIST = ROOT / "scripts" / "determinism_allowlist.txt"

# Identifier declared with a hash-table type: struct fields, let bindings
# with annotations, fn params. Covers `x: HashMap<..>` and turbofish-free
# constructor bindings `let x = HashMap::new()`.
DECL_RE = re.compile(
    r"\b(\w+)\s*:\s*&?(?:mut\s+)?(?:std::collections::)?Hash(?:Map|Set)\s*<"
    r"|let\s+(?:mut\s+)?(\w+)(?::[^=]+)?=\s*(?:std::collections::)?Hash(?:Map|Set)::"
)

ITER_METHODS = (
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "difference",
    "intersection",
    "symmetric_difference",
    "union",
    "retain",
)


def strip_test_modules(src: str) -> str:
    """Blank out `#[cfg(test)] mod ... { ... }` bodies (keep line numbers)."""
    out = list(src)
    for m in re.finditer(r"#\[cfg\(test\)\]", src):
        brace = src.find("{", m.end())
        if brace < 0:
            continue
        depth = 0
        for i in range(brace, len(src)):
            if src[i] == "{":
                depth += 1
            elif src[i] == "}":
                depth -= 1
                if depth == 0:
                    for j in range(m.start(), i + 1):
                        if out[j] not in "\n":
                            out[j] = " "
                    break
    return "".join(out)


def load_allowlist() -> tuple[set[tuple[str, str]], list[str]]:
    """Parse the allowlist, returning (entries, format failures).

    Each meaningful line must be `path:identifier  # justification`: the
    path must exist in the repo, the identifier must be non-empty, the
    justification comment is mandatory, and entries must be unique.
    """
    allowed: set[tuple[str, str]] = set()
    problems: list[str] = []
    if not ALLOWLIST.exists():
        return allowed, problems
    for lineno, raw in enumerate(ALLOWLIST.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        code, _, comment = stripped.partition("#")
        code = code.strip()
        where = f"{ALLOWLIST.name}:{lineno}"
        if not comment.strip():
            problems.append(f"{where}: entry `{code}` has no `# why it is safe` justification")
        if ":" not in code:
            problems.append(f"{where}: `{code}` is not a `path:identifier` pair")
            continue
        path, ident = code.rsplit(":", 1)
        path, ident = path.strip(), ident.strip()
        if not ident or not re.fullmatch(r"\w+", ident):
            problems.append(f"{where}: identifier `{ident}` is not a plain identifier")
            continue
        if not (ROOT / path).is_file():
            problems.append(f"{where}: file `{path}` does not exist")
            continue
        if (path, ident) in allowed:
            problems.append(f"{where}: duplicate entry `{path}:{ident}`")
            continue
        allowed.add((path, ident))
    return allowed, problems


WALLCLOCK_RE = re.compile(r"\b(?:Instant|SystemTime)\s*::\s*now\s*\(")


def main() -> int:
    allowed, problems = load_allowlist()
    used: set[tuple[str, str]] = set()
    failures = []
    paths = (
        list(ROOT.glob("crates/*/src/**/*.rs"))
        + list(ROOT.glob("crates/*/examples/**/*.rs"))
        + list(ROOT.glob("src/**/*.rs"))
    )
    for path in sorted(paths):
        rel = path.relative_to(ROOT).as_posix()
        src = strip_test_modules(path.read_text())
        # Wall-clock reads in simulation crates (bench is measurement code).
        if not rel.startswith("crates/bench/"):
            for i, line in enumerate(src.splitlines(), start=1):
                if line.lstrip().startswith("//"):
                    continue
                if WALLCLOCK_RE.search(line):
                    if (rel, "wallclock") in allowed:
                        used.add((rel, "wallclock"))
                    else:
                        failures.append(
                            f"{rel}:{i}: wall-clock read in simulation code: {line.strip()}"
                        )
        hashy = set()
        for m in DECL_RE.finditer(src):
            hashy.add(m.group(1) or m.group(2))
        if not hashy:
            continue
        method_alt = "|".join(ITER_METHODS)
        for name in sorted(hashy):
            # `for x in &map` / `for x in map` (the bare-identifier forms)
            # and any ordering-sensitive method call on the identifier.
            pat = re.compile(
                rf"for\s+[^;{{]*?\bin\s+&?(?:mut\s+)?(?:self\.)?{name}\b\s*\{{"
                rf"|\b(?:self\.)?{name}\s*\.\s*(?:{method_alt})\s*\("
            )
            for i, line in enumerate(src.splitlines(), start=1):
                if line.lstrip().startswith("//"):
                    continue
                if pat.search(line):
                    if (rel, name) in allowed:
                        used.add((rel, name))
                    else:
                        failures.append(
                            f"{rel}:{i}: iteration over hash table `{name}`: {line.strip()}"
                        )
    # Stale entries are audit rot: the audited site is gone, so the waiver
    # must go with it (or be re-justified against the new code).
    for path, ident in sorted(allowed - used):
        problems.append(f"stale allowlist entry `{path}:{ident}` suppresses nothing")
    status = 0
    if problems:
        print(f"determinism lint: {ALLOWLIST.relative_to(ROOT)} failed its self-check:")
        for p in problems:
            print(f"  {p}")
        status = 1
    if failures:
        print("determinism lint: unaudited HashMap/HashSet iteration in non-test code:")
        for f in failures:
            print(f"  {f}")
        print(
            "\nEither sort the collected entries before any observable use and add\n"
            f"`<path>:<identifier>  # reason` to {ALLOWLIST.relative_to(ROOT)}, or\n"
            "switch the container to an order-stable structure (sorted Vec, slab)."
        )
        status = 1
    if status == 0:
        print(f"determinism lint: clean ({len(paths)} files, {len(allowed)} audited sites)")
    return status


if __name__ == "__main__":
    sys.exit(main())
